package model

import (
	"asap/internal/cache"
	"asap/internal/mem"
	"asap/internal/persist"
	"asap/internal/sim"
	"asap/internal/stats"
)

// LRP implements Lazy Release Persistency (Dananjaya et al., ASPLOS'20) as
// the paper characterizes it in §VII-E and Table IV: release persistency
// enforced in the cache hierarchy — buffered conservative flushing like
// HOPS, but cross-thread dependencies are resolved by *stalling the
// coherence transfer*: a forward request for a released cache line blocks
// until the releaser's earlier writes persist. The acquiring core therefore
// stalls at the acquire itself instead of at its persist buffer. "ASAP
// instead records the dependency information and persists writes
// speculatively without stalling. Hence, ASAP would perform better than
// LRP."
type LRP struct {
	env   Env
	hc    hotCounters
	cores []*lrpCore
	// stallees[src] lists cores whose acquire is blocked until src
	// persists.
	stallees    map[persist.EpochID][]int
	committedTS []uint64
}

type lrpCore struct {
	id int
	pb *persist.PersistBuffer
	et *persist.EpochTable

	flushScheduled bool
	storeWaiters   []func()
	fenceWaiter    func()
	dfenceWaiter   func()
	dfenceStart    sim.Cycles

	// acquireStall holds the epoch whose persist the next operation of
	// this core must wait for (the blocked coherence forward).
	acquireStall *persist.EpochID
	stallBegan   sim.Cycles
	stalled      []func()
}

func newLRP(env Env) *LRP {
	m := &LRP{
		env:         env,
		hc:          newHotCounters(env.St),
		stallees:    make(map[persist.EpochID][]int),
		committedTS: make([]uint64, env.Cfg.Cores),
	}
	m.cores = make([]*lrpCore, env.Cfg.Cores)
	for i := range m.cores {
		m.cores[i] = &lrpCore{
			id: i,
			pb: persist.NewPersistBuffer(env.Cfg.PBEntries),
			et: persist.NewEpochTable(i, env.Cfg.ETEntries),
		}
	}
	return m
}

// Name returns "lrp".
func (m *LRP) Name() string { return NameLRP }

// Stats returns the shared stat set.
func (m *LRP) Stats() *stats.Set { return m.env.St }

// CurrentTS returns the open epoch of the core.
func (m *LRP) CurrentTS(core int) uint64 { return m.cores[core].et.CurrentTS() }

// EpochCommitted reports whether epoch e has fully persisted.
func (m *LRP) EpochCommitted(e persist.EpochID) bool {
	return m.committedTS[e.Thread] >= e.TS
}

// gate defers fn while the core's acquire is blocked on a remote persist.
func (m *LRP) gate(c *lrpCore, fn func()) {
	if c.acquireStall != nil {
		c.stalled = append(c.stalled, fn)
		return
	}
	fn()
}

// Store buffers the write, gated behind any blocked acquire.
func (m *LRP) Store(core int, line mem.Line, token mem.Token, done func()) {
	c := m.cores[core]
	//asaplint:ignore alloccheck closure-form event scheduling; typed-event conversion of this legacy model is tracked roadmap debt
	m.gate(c, func() { m.tryEnqueue(c, line, token, done) })
}

func (m *LRP) tryEnqueue(c *lrpCore, line mem.Line, token mem.Token, done func()) {
	ts := c.et.CurrentTS()
	coalesced, ok := c.pb.Enqueue(line, token, ts)
	if !ok {
		began := m.env.Eng.Now()
		//asaplint:ignore alloccheck closure-form event scheduling; typed-event conversion of this legacy model is tracked roadmap debt
		c.storeWaiters = append(c.storeWaiters, func() {
			m.hc.cyclesStalled.Add(uint64(m.env.Eng.Now() - began))
			m.tryEnqueue(c, line, token, done)
		})
		m.kickFlusher(c)
		return
	}
	m.hc.entriesInserted.Inc()
	if coalesced {
		m.hc.pbCoalesced.Inc()
	} else {
		c.et.Current().Unacked++
	}
	m.env.Ledger.RecordWrite(persist.EpochID{Thread: c.id, TS: ts}, line, token)
	m.kickFlusher(c)
	done()
}

// Ofence closes the epoch.
func (m *LRP) Ofence(core int, done func()) {
	c := m.cores[core]
	//asaplint:ignore alloccheck closure-form event scheduling; typed-event conversion of this legacy model is tracked roadmap debt
	m.gate(c, func() { m.ofence(c, done) })
}

func (m *LRP) ofence(c *lrpCore, done func()) {
	if c.et.Full() {
		began := m.env.Eng.Now()
		//asaplint:ignore alloccheck closure-form event scheduling; typed-event conversion of this legacy model is tracked roadmap debt
		c.fenceWaiter = func() {
			m.hc.ofenceStalled.Add(uint64(m.env.Eng.Now() - began))
			m.ofence(c, done)
		}
		return
	}
	closed := c.et.CurrentTS()
	c.et.Advance()
	m.tryCommit(c, closed)
	done()
}

// Dfence drains the persist buffer.
func (m *LRP) Dfence(core int, done func()) {
	c := m.cores[core]
	//asaplint:ignore alloccheck closure-form event scheduling; typed-event conversion of this legacy model is tracked roadmap debt
	m.gate(c, func() { m.dfence(c, done) })
}

func (m *LRP) dfence(c *lrpCore, done func()) {
	if c.et.Full() {
		began := m.env.Eng.Now()
		//asaplint:ignore alloccheck closure-form event scheduling; typed-event conversion of this legacy model is tracked roadmap debt
		c.fenceWaiter = func() {
			m.hc.ofenceStalled.Add(uint64(m.env.Eng.Now() - began))
			m.dfence(c, done)
		}
		return
	}
	closed := c.et.CurrentTS()
	c.et.Advance()
	m.tryCommit(c, closed)
	if c.et.AllCommitted() {
		done()
		return
	}
	if c.dfenceWaiter != nil {
		panic("lrp: overlapping dfence waits on one core")
	}
	c.dfenceStart = m.env.Eng.Now()
	c.dfenceWaiter = done
	m.kickFlusher(c)
}

// Release closes the epoch (one-sided barrier of release persistency).
func (m *LRP) Release(core int, line mem.Line, done func()) {
	c := m.cores[core]
	m.gate(c, func() {
		if !c.et.Full() {
			relTS := c.et.CurrentTS()
			c.et.Advance()
			m.tryCommit(c, relTS)
		}
		done()
	})
}

// Acquire needs no direct action; Conflict installs the stall.
func (m *LRP) Acquire(core int, line mem.Line) {}

// Conflict: an acquire of a released line whose release epoch has not
// persisted blocks the requesting core — LRP's stalled coherence forward.
func (m *LRP) Conflict(core int, cf *cache.Conflict) {
	if !cf.AcquireOnRelease {
		return
	}
	src := persist.EpochID{Thread: cf.Writer, TS: cf.WriterTS}
	if m.EpochCommitted(src) {
		return
	}
	m.hc.interTEpochConflict.Inc()
	m.hc.lrpForwardStalls.Inc()
	c := m.cores[core]
	if c.acquireStall == nil {
		s := src
		c.acquireStall = &s
		c.stallBegan = m.env.Eng.Now()
		//asaplint:ignore alloccheck legacy model map bounded by workload footprint; outside the zero-alloc gate
		m.stallees[src] = append(m.stallees[src], core)
	}
	// Make sure the source epoch is closed so it can persist.
	w := m.cores[src.Thread]
	if w.et.CurrentTS() == src.TS {
		w.et.Advance()
		m.tryCommit(w, src.TS)
		m.kickFlusher(w)
	}
}

// StartDrain gives end-of-trace dfence semantics.
func (m *LRP) StartDrain(core int, done func()) { m.Dfence(core, done) }

// PBOccupancy, PBBlocked, PBHasLine feed the sampler and WBB.
func (m *LRP) PBOccupancy(core int) int { return m.cores[core].pb.Len() }

func (m *LRP) PBBlocked(core int) bool {
	c := m.cores[core]
	if c.pb.Empty() {
		return false
	}
	return m.nextFlushable(c) == nil && c.pb.Inflight() == 0
}

func (m *LRP) PBHasLine(core int, line mem.Line) bool {
	return m.cores[core].pb.HasLine(line)
}

// nextFlushable: conservative oldest-epoch flushing, like HOPS.
func (m *LRP) nextFlushable(c *lrpCore) *persist.PBEntry {
	oldest := c.et.OldestTS()
	//asaplint:ignore alloccheck closure-form event scheduling; typed-event conversion of this legacy model is tracked roadmap debt
	return c.pb.NextWaiting(func(e *persist.PBEntry) bool { return e.TS == oldest })
}

func (m *LRP) kickFlusher(c *lrpCore) {
	if c.flushScheduled {
		return
	}
	c.flushScheduled = true
	//asaplint:ignore alloccheck closure-form event scheduling; typed-event conversion of this legacy model is tracked roadmap debt
	m.env.Eng.After(1, func() {
		c.flushScheduled = false
		m.flushOne(c)
	})
}

func (m *LRP) flushOne(c *lrpCore) {
	if c.pb.Inflight() >= m.env.Cfg.PBMaxInflight {
		return
	}
	e := m.nextFlushable(c)
	if e == nil {
		return
	}
	c.pb.MarkInflight(e, false)
	pkt := persist.FlushPacket{
		Line:  e.Line,
		Token: e.Token,
		Epoch: persist.EpochID{Thread: c.id, TS: e.TS},
	}
	id := e.ID
	//asaplint:ignore alloccheck closure-form flush reply; typed-event conversion of this legacy model is tracked roadmap debt
	m.env.Link.Flush(m.env.IL.Home(e.Line), pkt, func(res persist.FlushResult) {
		if res != persist.FlushAck {
			panic("lrp: controller NACKed a safe flush")
		}
		m.onAck(c, id)
	})
	if c.pb.Inflight() < m.env.Cfg.PBMaxInflight {
		//asaplint:ignore alloccheck closure-form event scheduling; typed-event conversion of this legacy model is tracked roadmap debt
		m.env.Eng.After(flushIssuePace, func() { m.flushOne(c) })
	}
}

func (m *LRP) onAck(c *lrpCore, id uint64) {
	e, ok := c.pb.Ack(id)
	if !ok {
		panic("lrp: ACK for unknown persist buffer entry")
	}
	if ent, ok := c.et.Get(e.TS); ok {
		ent.Unacked--
		m.tryCommit(c, e.TS)
	}
	if len(c.storeWaiters) > 0 {
		w := c.storeWaiters[0]
		c.storeWaiters = c.storeWaiters[1:]
		w()
	}
	m.kickFlusher(c)
}

func (m *LRP) tryCommit(c *lrpCore, ts uint64) {
	ent, ok := c.et.Get(ts)
	if !ok || ent.Committed {
		return
	}
	if !ent.Closed || ent.Unacked != 0 || !c.et.PrevCommitted(ts) {
		return
	}
	ent.Committed = true
	m.committedTS[c.id] = ts
	m.hc.epochsCommitted.Inc()
	epoch := persist.EpochID{Thread: c.id, TS: ts}
	m.env.Ledger.EpochCommitted(epoch)
	c.et.Retire(ts)

	// Unblock coherence forwards waiting on this epoch.
	if cores := m.stallees[epoch]; len(cores) > 0 {
		delete(m.stallees, epoch)
		for _, id := range cores {
			id := id
			//asaplint:ignore alloccheck closure-form event scheduling; typed-event conversion of this legacy model is tracked roadmap debt
			m.env.Eng.After(m.env.Cfg.MsgLat, func() { m.unstall(id) })
		}
	}

	m.tryCommit(c, ts+1)
	if c.fenceWaiter != nil && !c.et.Full() {
		w := c.fenceWaiter
		c.fenceWaiter = nil
		//asaplint:ignore alloccheck resume/done callback invocation; the callback's creation site carries the alloc proof
		w()
	}
	if c.dfenceWaiter != nil && c.et.AllCommitted() {
		w := c.dfenceWaiter
		c.dfenceWaiter = nil
		m.hc.dfenceStalled.Add(uint64(m.env.Eng.Now() - c.dfenceStart))
		//asaplint:ignore alloccheck resume/done callback invocation; the callback's creation site carries the alloc proof
		w()
	}
	m.kickFlusher(c)
}

func (m *LRP) unstall(core int) {
	c := m.cores[core]
	if c.acquireStall == nil {
		return
	}
	m.hc.lrpStallCycles.Add(uint64(m.env.Eng.Now() - c.stallBegan))
	c.acquireStall = nil
	pend := c.stalled
	c.stalled = nil
	for _, fn := range pend {
		fn()
	}
}

var _ Model = (*LRP)(nil)
