package model

import (
	"asap/internal/cache"
	"asap/internal/mem"
	"asap/internal/persist"
	"asap/internal/sim"
	"asap/internal/stats"
)

// DPO implements Delegated Persist Ordering (Kolli et al., MICRO'16) as the
// paper characterizes it in §VII-E and Table IV: persist buffers alongside
// the private caches with *conservative* flushing — like HOPS — but
// cross-thread dependencies resolve through interconnect snooping
// (broadcast) rather than polling a global register, so resolution is fast
// but every commit costs a broadcast. DPO does not support multiple memory
// controllers; on this 2-MC machine it falls back to the same
// wait-for-all-ACKs cross-MC ordering as HOPS, which is exactly the
// configuration the paper predicts performs "comparable to HOPS and lesser
// than ASAP".
type DPO struct {
	env   Env
	hc    hotCounters
	cores []*dpoCore
	// waiters[src] lists dependent epochs to notify when src commits —
	// the snooped broadcast.
	waiters map[persist.EpochID][]persist.EpochID

	committedTS []uint64
}

type dpoCore struct {
	id int
	pb *persist.PersistBuffer
	et *persist.EpochTable

	flushScheduled bool
	storeWaiters   []func()
	fenceWaiter    func()
	dfenceWaiter   func()
	dfenceStart    sim.Cycles
}

func newDPO(env Env) *DPO {
	m := &DPO{
		env:         env,
		hc:          newHotCounters(env.St),
		waiters:     make(map[persist.EpochID][]persist.EpochID),
		committedTS: make([]uint64, env.Cfg.Cores),
	}
	m.cores = make([]*dpoCore, env.Cfg.Cores)
	for i := range m.cores {
		m.cores[i] = &dpoCore{
			id: i,
			pb: persist.NewPersistBuffer(env.Cfg.PBEntries),
			et: persist.NewEpochTable(i, env.Cfg.ETEntries),
		}
	}
	return m
}

// Name returns "dpo".
func (m *DPO) Name() string { return NameDPO }

// Stats returns the shared stat set.
func (m *DPO) Stats() *stats.Set { return m.env.St }

// CurrentTS returns the open epoch of the core.
func (m *DPO) CurrentTS(core int) uint64 { return m.cores[core].et.CurrentTS() }

// EpochCommitted reports whether epoch e has committed.
func (m *DPO) EpochCommitted(e persist.EpochID) bool {
	return m.committedTS[e.Thread] >= e.TS
}

// Store enqueues into the persist buffer, stalling on a full buffer.
func (m *DPO) Store(core int, line mem.Line, token mem.Token, done func()) {
	c := m.cores[core]
	m.tryEnqueue(c, line, token, done)
}

func (m *DPO) tryEnqueue(c *dpoCore, line mem.Line, token mem.Token, done func()) {
	ts := c.et.CurrentTS()
	coalesced, ok := c.pb.Enqueue(line, token, ts)
	if !ok {
		began := m.env.Eng.Now()
		//asaplint:ignore alloccheck closure-form event scheduling; typed-event conversion of this legacy model is tracked roadmap debt
		c.storeWaiters = append(c.storeWaiters, func() {
			m.hc.cyclesStalled.Add(uint64(m.env.Eng.Now() - began))
			m.tryEnqueue(c, line, token, done)
		})
		m.kickFlusher(c)
		return
	}
	m.hc.entriesInserted.Inc()
	if coalesced {
		m.hc.pbCoalesced.Inc()
	} else {
		c.et.Current().Unacked++
	}
	m.env.Ledger.RecordWrite(persist.EpochID{Thread: c.id, TS: ts}, line, token)
	m.kickFlusher(c)
	//asaplint:ignore alloccheck resume/done callback invocation; the callback's creation site carries the alloc proof
	done()
}

// Ofence closes the epoch.
func (m *DPO) Ofence(core int, done func()) {
	c := m.cores[core]
	if c.et.Full() {
		began := m.env.Eng.Now()
		//asaplint:ignore alloccheck closure-form event scheduling; typed-event conversion of this legacy model is tracked roadmap debt
		c.fenceWaiter = func() {
			m.hc.ofenceStalled.Add(uint64(m.env.Eng.Now() - began))
			m.Ofence(core, done)
		}
		return
	}
	closed := c.et.CurrentTS()
	c.et.Advance()
	m.tryCommit(c, closed)
	//asaplint:ignore alloccheck resume/done callback invocation; the callback's creation site carries the alloc proof
	done()
}

// Dfence drains the persist buffer completely.
func (m *DPO) Dfence(core int, done func()) {
	c := m.cores[core]
	if c.et.Full() {
		began := m.env.Eng.Now()
		//asaplint:ignore alloccheck closure-form event scheduling; typed-event conversion of this legacy model is tracked roadmap debt
		c.fenceWaiter = func() {
			m.hc.ofenceStalled.Add(uint64(m.env.Eng.Now() - began))
			m.Dfence(core, done)
		}
		return
	}
	closed := c.et.CurrentTS()
	c.et.Advance()
	m.tryCommit(c, closed)
	if c.et.AllCommitted() {
		//asaplint:ignore alloccheck resume/done callback invocation; the callback's creation site carries the alloc proof
		done()
		return
	}
	if c.dfenceWaiter != nil {
		panic("dpo: overlapping dfence waits on one core")
	}
	c.dfenceStart = m.env.Eng.Now()
	c.dfenceWaiter = done
	m.kickFlusher(c)
}

// Release closes the epoch (release persistency).
func (m *DPO) Release(core int, line mem.Line, done func()) {
	c := m.cores[core]
	if !c.et.Full() {
		relTS := c.et.CurrentTS()
		c.et.Advance()
		m.tryCommit(c, relTS)
	}
	done()
}

// Acquire needs no direct action; Conflict carries the dependency.
func (m *DPO) Acquire(core int, line mem.Line) {}

// Conflict records a dependency under release persistency (DPO is evaluated
// with the RP policy here, its favourable configuration).
func (m *DPO) Conflict(core int, cf *cache.Conflict) {
	if !cf.AcquireOnRelease {
		return
	}
	src := persist.EpochID{Thread: cf.Writer, TS: cf.WriterTS}
	if m.EpochCommitted(src) {
		return
	}
	m.hc.interTEpochConflict.Inc()
	w := m.cores[src.Thread]
	if w.et.CurrentTS() == src.TS {
		w.et.Advance()
		m.tryCommit(w, src.TS)
	}
	c := m.cores[core]
	prev := c.et.CurrentTS()
	c.et.Advance()
	m.tryCommit(c, prev)
	cur := c.et.Current()
	if !m.EpochCommitted(src) {
		//asaplint:ignore alloccheck legacy model bookkeeping growth, bounded by workload footprint; outside the zero-alloc gate
		cur.Deps = append(cur.Deps, src)
		dst := persist.EpochID{Thread: core, TS: cur.TS}
		//asaplint:ignore alloccheck legacy model map bounded by workload footprint; outside the zero-alloc gate
		m.waiters[src] = append(m.waiters[src], dst)
		m.env.Ledger.DepCreated(src, dst)
	}
}

// StartDrain gives end-of-trace dfence semantics.
func (m *DPO) StartDrain(core int, done func()) { m.Dfence(core, done) }

// PBOccupancy and PBBlocked feed the sampler.
func (m *DPO) PBOccupancy(core int) int { return m.cores[core].pb.Len() }

// PBBlocked mirrors HOPS: conservative flushing with nothing eligible.
func (m *DPO) PBBlocked(core int) bool {
	c := m.cores[core]
	if c.pb.Empty() {
		return false
	}
	return m.nextFlushable(c) == nil && c.pb.Inflight() == 0
}

// PBHasLine reports whether the core's persist buffer holds the line.
func (m *DPO) PBHasLine(core int, line mem.Line) bool {
	return m.cores[core].pb.HasLine(line)
}

func (m *DPO) nextFlushable(c *dpoCore) *persist.PBEntry {
	oldest := c.et.OldestTS()
	if ent, ok := c.et.Get(oldest); ok && !ent.DepsResolved() {
		return nil // waiting for a snooped commit broadcast
	}
	//asaplint:ignore alloccheck closure-form event scheduling; typed-event conversion of this legacy model is tracked roadmap debt
	return c.pb.NextWaiting(func(e *persist.PBEntry) bool { return e.TS == oldest })
}

func (m *DPO) kickFlusher(c *dpoCore) {
	if c.flushScheduled {
		return
	}
	c.flushScheduled = true
	//asaplint:ignore alloccheck closure-form event scheduling; typed-event conversion of this legacy model is tracked roadmap debt
	m.env.Eng.After(1, func() {
		c.flushScheduled = false
		m.flushOne(c)
	})
}

func (m *DPO) flushOne(c *dpoCore) {
	if c.pb.Inflight() >= m.env.Cfg.PBMaxInflight {
		return
	}
	e := m.nextFlushable(c)
	if e == nil {
		return
	}
	c.pb.MarkInflight(e, false)
	pkt := persist.FlushPacket{
		Line:  e.Line,
		Token: e.Token,
		Epoch: persist.EpochID{Thread: c.id, TS: e.TS},
	}
	id := e.ID
	//asaplint:ignore alloccheck closure-form flush reply; typed-event conversion of this legacy model is tracked roadmap debt
	m.env.Link.Flush(m.env.IL.Home(e.Line), pkt, func(res persist.FlushResult) {
		if res != persist.FlushAck {
			panic("dpo: controller NACKed a safe flush")
		}
		m.onAck(c, id)
	})
	if c.pb.Inflight() < m.env.Cfg.PBMaxInflight {
		//asaplint:ignore alloccheck closure-form event scheduling; typed-event conversion of this legacy model is tracked roadmap debt
		m.env.Eng.After(flushIssuePace, func() { m.flushOne(c) })
	}
}

func (m *DPO) onAck(c *dpoCore, id uint64) {
	e, ok := c.pb.Ack(id)
	if !ok {
		panic("dpo: ACK for unknown persist buffer entry")
	}
	if ent, ok := c.et.Get(e.TS); ok {
		ent.Unacked--
		m.tryCommit(c, e.TS)
	}
	if len(c.storeWaiters) > 0 {
		w := c.storeWaiters[0]
		c.storeWaiters = c.storeWaiters[1:]
		w()
	}
	m.kickFlusher(c)
}

func (m *DPO) tryCommit(c *dpoCore, ts uint64) {
	ent, ok := c.et.Get(ts)
	if !ok || ent.Committed {
		return
	}
	if !ent.Closed || ent.Unacked != 0 || !ent.DepsResolved() || !c.et.PrevCommitted(ts) {
		return
	}
	ent.Committed = true
	m.committedTS[c.id] = ts
	m.hc.epochsCommitted.Inc()
	epoch := persist.EpochID{Thread: c.id, TS: ts}
	m.env.Ledger.EpochCommitted(epoch)
	c.et.Retire(ts)

	// Snooped broadcast: every dependent sees the commit after one
	// interconnect hop. The broadcast itself is DPO's scaling cost.
	if deps := m.waiters[epoch]; len(deps) > 0 {
		delete(m.waiters, epoch)
		m.hc.dpoBroadcasts.Inc()
		for _, dst := range deps {
			dst := dst
			//asaplint:ignore alloccheck closure-form event scheduling; typed-event conversion of this legacy model is tracked roadmap debt
			m.env.Eng.After(m.env.Cfg.MsgLat, func() { m.resolve(dst) })
		}
	}

	m.tryCommit(c, ts+1)
	if c.fenceWaiter != nil && !c.et.Full() {
		w := c.fenceWaiter
		c.fenceWaiter = nil
		//asaplint:ignore alloccheck resume/done callback invocation; the callback's creation site carries the alloc proof
		w()
	}
	if c.dfenceWaiter != nil && c.et.AllCommitted() {
		w := c.dfenceWaiter
		c.dfenceWaiter = nil
		m.hc.dfenceStalled.Add(uint64(m.env.Eng.Now() - c.dfenceStart))
		//asaplint:ignore alloccheck resume/done callback invocation; the callback's creation site carries the alloc proof
		w()
	}
	m.kickFlusher(c)
}

func (m *DPO) resolve(dst persist.EpochID) {
	c := m.cores[dst.Thread]
	if ent, ok := c.et.Get(dst.TS); ok {
		ent.Resolved++
		m.tryCommit(c, dst.TS)
	}
	m.kickFlusher(c)
}

var _ Model = (*DPO)(nil)
