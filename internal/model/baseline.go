package model

import (
	"asap/internal/cache"
	"asap/internal/mem"
	"asap/internal/persist"
	"asap/internal/sim"
	"asap/internal/stats"
)

// Baseline replicates current Intel machines (§VII): persistent stores are
// tracked as dirty lines; ordering and durability points (ofence, dfence,
// and the flush-before-unlock convention of lock-based PM code) issue clwb
// for every dirty line of the epoch and then stall the core on an sfence
// until the controllers acknowledge every flush. There are no persist
// buffers, so ordering stalls hit the core directly — the behaviour the
// paper's Figure 8 normalizes everything against.
type Baseline struct {
	env   Env
	hc    hotCounters
	cores []*baseCore
}

type baseCore struct {
	id int
	// writeset holds the dirty persistent lines of the current epoch, in
	// insertion order for deterministic issue.
	order    []mem.Line
	writeset map[mem.Line]mem.Token

	ts          uint64 // current epoch timestamp
	committedTS uint64 // epochs <= this have had their fence complete

	outstanding int
	issueQ      []mem.Line
	fenceDone   func()
	fenceStart  sim.Cycles
}

func newBaseline(env Env) *Baseline {
	m := &Baseline{env: env, hc: newHotCounters(env.St)}
	m.cores = make([]*baseCore, env.Cfg.Cores)
	for i := range m.cores {
		m.cores[i] = &baseCore{id: i, ts: 1, writeset: make(map[mem.Line]mem.Token)}
	}
	return m
}

// Name returns "baseline".
func (m *Baseline) Name() string { return NameBaseline }

// Stats returns the shared stat set.
func (m *Baseline) Stats() *stats.Set { return m.env.St }

// CurrentTS returns the core's epoch (fence-delimited).
func (m *Baseline) CurrentTS(core int) uint64 { return m.cores[core].ts }

// EpochCommitted: an epoch is durable once its closing fence completed.
func (m *Baseline) EpochCommitted(e persist.EpochID) bool {
	return m.cores[e.Thread].committedTS >= e.TS
}

// Store marks the line dirty; durability is deferred to the next fence.
func (m *Baseline) Store(core int, line mem.Line, token mem.Token, done func()) {
	c := m.cores[core]
	if _, ok := c.writeset[line]; !ok {
		c.order = append(c.order, line) //asaplint:ignore alloccheck dirty-line list reaches the inter-fence footprint once, then reuses it
	}
	c.writeset[line] = token //asaplint:ignore alloccheck write set bounded by dirty footprint; entries deleted at flush recycle
	m.env.Ledger.RecordWrite(persist.EpochID{Thread: core, TS: c.ts}, line, token)
	done() //asaplint:ignore alloccheck done is the core's resume callback, built once at machine construction
}

// Ofence is clwb-per-dirty-line followed by sfence: the core stalls until
// every flush is acknowledged.
func (m *Baseline) Ofence(core int, done func()) { m.fence(core, done) }

// Dfence behaves identically: on this hardware the sfence already waits for
// ADR durability.
func (m *Baseline) Dfence(core int, done func()) { m.fence(core, done) }

// Release flushes and fences before the lock is actually released — the
// standard recipe for crash-consistent lock-based PM code on Intel hardware.
func (m *Baseline) Release(core int, line mem.Line, done func()) {
	m.fence(core, done)
}

// Acquire has no persistence cost on the baseline.
func (m *Baseline) Acquire(core int, line mem.Line) {}

// Conflict: the synchronous model needs no dependency tracking; ordering is
// already enforced at every fence.
func (m *Baseline) Conflict(core int, cf *cache.Conflict) {}

// StartDrain issues a final fence.
func (m *Baseline) StartDrain(core int, done func()) { m.fence(core, done) }

// PBOccupancy and PBBlocked: no persist buffer.
func (m *Baseline) PBOccupancy(core int) int { return 0 }
func (m *Baseline) PBBlocked(core int) bool  { return false }

func (m *Baseline) fence(core int, done func()) {
	c := m.cores[core]
	if c.fenceDone != nil {
		panic("baseline: overlapping fences on one core")
	}
	if len(c.order) == 0 && c.outstanding == 0 {
		m.commitEpoch(c)
		done() //asaplint:ignore alloccheck done is the core's resume callback, built once at machine construction
		return
	}
	m.hc.fences.Inc()
	c.fenceStart = m.env.Eng.Now()
	c.fenceDone = done
	c.issueQ = append(c.issueQ, c.order...) //asaplint:ignore alloccheck issue queue reaches steady-state capacity, then appends reuse it
	c.order = c.order[:0]
	m.issueFlushes(c)
}

// issueFlushes streams clwb operations, at most PBMaxInflight outstanding
// (the write-combining/MSHR limit of the flush path).
func (m *Baseline) issueFlushes(c *baseCore) {
	for len(c.issueQ) > 0 && c.outstanding < m.env.Cfg.PBMaxInflight {
		line := c.issueQ[0]
		c.issueQ = c.issueQ[1:]
		tok := c.writeset[line]
		delete(c.writeset, line)
		c.outstanding++
		m.hc.clwbIssued.Inc()
		pkt := persist.FlushPacket{
			Line:  line,
			Token: tok,
			Epoch: persist.EpochID{Thread: c.id, TS: c.ts},
		}
		//asaplint:ignore alloccheck closure-form flush reply; typed-event conversion of this model is tracked roadmap debt
		m.env.Link.Flush(m.env.IL.Home(line), pkt, func(res persist.FlushResult) {
			if res != persist.FlushAck {
				panic("baseline: controller NACKed a flush")
			}
			c.outstanding--
			m.onAck(c)
		})
	}
}

func (m *Baseline) onAck(c *baseCore) {
	if len(c.issueQ) > 0 {
		m.issueFlushes(c)
		return
	}
	if c.outstanding == 0 && c.fenceDone != nil {
		done := c.fenceDone
		c.fenceDone = nil
		m.hc.dfenceStalled.Add(uint64(m.env.Eng.Now() - c.fenceStart))
		m.commitEpoch(c)
		done()
	}
}

func (m *Baseline) commitEpoch(c *baseCore) {
	c.committedTS = c.ts
	m.env.Ledger.EpochCommitted(persist.EpochID{Thread: c.id, TS: c.ts})
	c.ts++
}

var _ Model = (*Baseline)(nil)

// PBHasLine: the baseline has no persist buffer; pending lines live in the
// epoch write set and are flushed synchronously at fences.
func (m *Baseline) PBHasLine(core int, line mem.Line) bool { return false }
