package model

import "asap/internal/stats"

// The persistency models' stat vocabulary. Registration happens at init so
// a typo at a call site panics on first write instead of silently forking a
// counter; asapsim -stats prints these descriptions next to the values.
// Names mirror the gem5 stats in Table VI of the paper where one exists.
func init() {
	stats.Register("clwbIssued", "explicit cache-line write-backs issued (baseline clwb+fence path)")
	stats.Register("cyclesStalled", "CPU stall cycles because of a full persist buffer")
	stats.Register("dfenceStalled", "CPU stall cycles waiting on dfence completion")
	stats.Register("dpoBroadcasts", "DPO inter-MC ordering broadcasts")
	stats.Register("entriesInserted", "writes enqueued in the persist buffers")
	stats.Register("epochsCommitted", "persist epochs committed durably")
	stats.Register("fences", "ordering fences executed (baseline sfence path)")
	stats.Register("hopsPolls", "HOPS completion polls while draining")
	stats.Register("interTEpochConflict", "cross-thread epoch dependencies detected")
	stats.Register("lrpForwardStalls", "LRP stalls forwarding a line under a pending release")
	stats.Register("lrpStallCycles", "cycles LRP cores spent stalled on release persists")
	stats.Register("ofenceStalled", "CPU stall cycles waiting on ofence ordering")
	stats.Register("pbCoalesced", "stores coalesced into an existing persist-buffer entry")
	stats.Register("pbNacks", "early flushes NACKed by the memory controller")
	stats.Register("specMisspeculations", "PMEM-Spec misspeculations forcing replay")
	stats.Register("swStrands", "StrandWeaver strands opened")
	stats.Register("totSpecWrites", "early (speculative) flushes issued")
	stats.Register("vorpalBroadcasts", "Vorpal vector-clock broadcasts")
	stats.Register("vorpalParkCycles", "cycles Vorpal flushes spent parked on tag dependencies")
	stats.Register("vorpalParked", "Vorpal flushes parked waiting on tag dependencies")
	stats.Register("vorpalTagBytes", "bytes of Vorpal vector-timestamp tags attached to stores")
}
