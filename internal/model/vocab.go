package model

import "asap/internal/stats"

// The persistency models' stat vocabulary. Registration happens at package
// init so a typo at a call site panics on first write instead of silently
// forking a counter; asapsim -stats prints these descriptions next to the
// values. Names mirror the gem5 stats in Table VI of the paper where one
// exists. Each Register returns the dense key the models resolve to Counter
// handles once at construction (newHotCounters), keeping string hashing off
// the per-store path.
var (
	kClwbIssued          = stats.Register("clwbIssued", "explicit cache-line write-backs issued (baseline clwb+fence path)")
	kCyclesStalled       = stats.Register("cyclesStalled", "CPU stall cycles because of a full persist buffer")
	kDfenceStalled       = stats.Register("dfenceStalled", "CPU stall cycles waiting on dfence completion")
	kDpoBroadcasts       = stats.Register("dpoBroadcasts", "DPO inter-MC ordering broadcasts")
	kEntriesInserted     = stats.Register("entriesInserted", "writes enqueued in the persist buffers")
	kEpochsCommitted     = stats.Register("epochsCommitted", "persist epochs committed durably")
	kFences              = stats.Register("fences", "ordering fences executed (baseline sfence path)")
	kHopsPolls           = stats.Register("hopsPolls", "HOPS completion polls while draining")
	kInterTEpochConflict = stats.Register("interTEpochConflict", "cross-thread epoch dependencies detected")
	kLrpForwardStalls    = stats.Register("lrpForwardStalls", "LRP stalls forwarding a line under a pending release")
	kLrpStallCycles      = stats.Register("lrpStallCycles", "cycles LRP cores spent stalled on release persists")
	kOfenceStalled       = stats.Register("ofenceStalled", "CPU stall cycles waiting on ofence ordering")
	kPbCoalesced         = stats.Register("pbCoalesced", "stores coalesced into an existing persist-buffer entry")
	kPbNacks             = stats.Register("pbNacks", "early flushes NACKed by the memory controller")
	kSpecMisspeculations = stats.Register("specMisspeculations", "PMEM-Spec misspeculations forcing replay")
	kSwStrands           = stats.Register("swStrands", "StrandWeaver strands opened")
	kTotSpecWrites       = stats.Register("totSpecWrites", "early (speculative) flushes issued")
	kVorpalBroadcasts    = stats.Register("vorpalBroadcasts", "Vorpal vector-clock broadcasts")
	kVorpalParkCycles    = stats.Register("vorpalParkCycles", "cycles Vorpal flushes spent parked on tag dependencies")
	kVorpalParked        = stats.Register("vorpalParked", "Vorpal flushes parked waiting on tag dependencies")
	kVorpalTagBytes      = stats.Register("vorpalTagBytes", "bytes of Vorpal vector-timestamp tags attached to stores")
)

// hotCounters is the bundle of pre-resolved stat handles the models touch
// on their per-store, per-fence, and per-conflict paths. Every model
// resolves the full bundle once at construction; unused handles cost
// nothing (resolution does not materialize a printed entry).
type hotCounters struct {
	clwbIssued          stats.Counter
	cyclesStalled       stats.Counter
	dfenceStalled       stats.Counter
	dpoBroadcasts       stats.Counter
	entriesInserted     stats.Counter
	epochsCommitted     stats.Counter
	fences              stats.Counter
	hopsPolls           stats.Counter
	interTEpochConflict stats.Counter
	lrpForwardStalls    stats.Counter
	lrpStallCycles      stats.Counter
	ofenceStalled       stats.Counter
	pbCoalesced         stats.Counter
	pbNacks             stats.Counter
	specMisspeculations stats.Counter
	swStrands           stats.Counter
	totSpecWrites       stats.Counter
	vorpalBroadcasts    stats.Counter
	vorpalParkCycles    stats.Counter
	vorpalParked        stats.Counter
	vorpalTagBytes      stats.Counter
}

func newHotCounters(st *stats.Set) hotCounters {
	return hotCounters{
		clwbIssued:          st.Counter(kClwbIssued),
		cyclesStalled:       st.Counter(kCyclesStalled),
		dfenceStalled:       st.Counter(kDfenceStalled),
		dpoBroadcasts:       st.Counter(kDpoBroadcasts),
		entriesInserted:     st.Counter(kEntriesInserted),
		epochsCommitted:     st.Counter(kEpochsCommitted),
		fences:              st.Counter(kFences),
		hopsPolls:           st.Counter(kHopsPolls),
		interTEpochConflict: st.Counter(kInterTEpochConflict),
		lrpForwardStalls:    st.Counter(kLrpForwardStalls),
		lrpStallCycles:      st.Counter(kLrpStallCycles),
		ofenceStalled:       st.Counter(kOfenceStalled),
		pbCoalesced:         st.Counter(kPbCoalesced),
		pbNacks:             st.Counter(kPbNacks),
		specMisspeculations: st.Counter(kSpecMisspeculations),
		swStrands:           st.Counter(kSwStrands),
		totSpecWrites:       st.Counter(kTotSpecWrites),
		vorpalBroadcasts:    st.Counter(kVorpalBroadcasts),
		vorpalParkCycles:    st.Counter(kVorpalParkCycles),
		vorpalParked:        st.Counter(kVorpalParked),
		vorpalTagBytes:      st.Counter(kVorpalTagBytes),
	}
}
