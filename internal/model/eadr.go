package model

import (
	"asap/internal/cache"
	"asap/internal/mem"
	"asap/internal/persist"
	"asap/internal/stats"
)

// EADR models a system with enhanced ADR (or, equivalently for performance,
// BBB's battery-backed buffers — the paper plots the two as one curve): the
// whole cache hierarchy is inside the persistence domain, so a store is
// durable the moment it retires. Fences cost only their pipeline overhead
// and no flush traffic is needed for ordering. This is the "ideal" bound
// ASAP is measured against (within 3.9% on average, §VII-A).
//
// Write traffic to NVM happens on cache evictions and at power failure; it
// is not modelled on the performance path (eADR does not appear in the
// paper's write-endurance figure).
type EADR struct {
	env     Env
	ts      []uint64
	nStores []uint64
}

func newEADR(env Env) *EADR {
	return &EADR{env: env, ts: make([]uint64, env.Cfg.Cores), nStores: make([]uint64, env.Cfg.Cores)}
}

// Name returns "eadr".
func (m *EADR) Name() string { return NameEADR }

// Stats returns the shared stat set.
func (m *EADR) Stats() *stats.Set { return m.env.St }

// CurrentTS returns the fence-delimited epoch (tracked for the ledger).
func (m *EADR) CurrentTS(core int) uint64 { return m.ts[core] + 1 }

// EpochCommitted: everything in the cache hierarchy survives a crash.
func (m *EADR) EpochCommitted(e persist.EpochID) bool { return true }

// Store is durable immediately.
func (m *EADR) Store(core int, line mem.Line, token mem.Token, done func()) {
	m.nStores[core]++
	m.env.Ledger.RecordWrite(persist.EpochID{Thread: core, TS: m.ts[core] + 1}, line, token)
	m.env.Ledger.EpochCommitted(persist.EpochID{Thread: core, TS: m.ts[core] + 1})
	done() //asaplint:ignore alloccheck done is the core's resume callback, built once at machine construction
}

// Ofence and Dfence are free beyond their pipeline cost.
func (m *EADR) Ofence(core int, done func()) { m.ts[core]++; done() } //asaplint:ignore alloccheck done is the core's resume callback, built once at machine construction
func (m *EADR) Dfence(core int, done func()) { m.ts[core]++; done() } //asaplint:ignore alloccheck done is the core's resume callback, built once at machine construction

// Release advances the epoch counter; no flush is needed.
func (m *EADR) Release(core int, line mem.Line, done func()) {
	m.ts[core]++
	done()
}

// Acquire and Conflict need no action: ordering is trivially satisfied.
func (m *EADR) Acquire(core int, line mem.Line)       {}
func (m *EADR) Conflict(core int, cf *cache.Conflict) {}

// StartDrain completes immediately.
func (m *EADR) StartDrain(core int, done func()) { done() }

// PBOccupancy and PBBlocked: no persist buffer.
func (m *EADR) PBOccupancy(core int) int { return 0 }
func (m *EADR) PBBlocked(core int) bool  { return false }

var _ Model = (*EADR)(nil)

// PBHasLine: eADR needs no persist buffer.
func (m *EADR) PBHasLine(core int, line mem.Line) bool { return false }
