package model

import (
	"testing"

	"asap/internal/cache"
	"asap/internal/config"
	"asap/internal/mem"
	"asap/internal/persist"
	"asap/internal/sim"
	"asap/internal/stats"
)

// testEnv builds a minimal environment with real controllers.
func testEnv(t *testing.T, name string) (Env, *sim.Engine) {
	t.Helper()
	eng := sim.NewEngine()
	cfg := config.Default()
	st := stats.New()
	mcs := make([]*persist.MC, cfg.MCs)
	for i := range mcs {
		mcs[i] = persist.NewMC(i, eng, cfg, Speculative(name), st)
	}
	return Env{
		Eng:    eng,
		Cfg:    cfg,
		MCs:    mcs,
		IL:     mem.NewInterleaver(cfg.MCs, cfg.InterleaveBytes),
		Dir:    cache.NewDirectory(),
		St:     st,
		Ledger: NopLedger{},
	}, eng
}

func TestNewAllModels(t *testing.T) {
	for _, name := range ExtendedNames() {
		env, _ := testEnv(t, name)
		m, err := New(name, env)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if m.Name() != name {
			t.Fatalf("Name() = %q, want %q", m.Name(), name)
		}
	}
	if _, err := New("bogus", Env{}); err == nil {
		t.Fatal("unknown model accepted")
	}
}

func TestSpeculativeFlag(t *testing.T) {
	for _, name := range ExtendedNames() {
		want := name == NameASAPEP || name == NameASAPRP
		if Speculative(name) != want {
			t.Errorf("Speculative(%s) = %v", name, Speculative(name))
		}
	}
}

// driveStoreFence runs store+dfence through a model directly, returning the
// simulated completion time.
func driveStoreFence(t *testing.T, name string, n int) sim.Cycles {
	t.Helper()
	env, eng := testEnv(t, name)
	m, err := New(name, env)
	if err != nil {
		t.Fatal(err)
	}
	doneCount := 0
	var next func(i int)
	next = func(i int) {
		if i >= n {
			m.Dfence(0, func() { doneCount++ })
			return
		}
		m.Store(0, mem.Line(100+i), mem.Token(i+1), func() {
			m.Ofence(0, func() { next(i + 1) })
		})
	}
	next(0)
	eng.Run(10_000_000)
	if doneCount != 1 {
		t.Fatalf("%s: dfence never completed", name)
	}
	return eng.Now()
}

// TestDfenceDurability: for every model, a dfence completes and all stored
// lines are durable afterwards (in WPQ or NVM) — except eADR, whose
// persistence domain is the cache.
func TestDfenceDurability(t *testing.T) {
	for _, name := range ExtendedNames() {
		name := name
		t.Run(name, func(t *testing.T) {
			env, eng := testEnv(t, name)
			m, err := New(name, env)
			if err != nil {
				t.Fatal(err)
			}
			fenced := false
			m.Store(0, 100, 1, func() {
				m.Store(0, 200, 2, func() {
					m.Dfence(0, func() { fenced = true })
				})
			})
			eng.Run(10_000_000)
			if !fenced {
				t.Fatal("dfence never completed")
			}
			if name == NameEADR {
				return
			}
			for _, line := range []mem.Line{100, 200} {
				mc := env.MCs[env.IL.Home(line)]
				_, inWPQ := mc.WPQ.Contains(line)
				if !inWPQ && mc.NVM.Peek(line) == 0 {
					t.Errorf("line %d not durable after dfence", line)
				}
			}
		})
	}
}

// TestModelCostOrdering: more decoupled designs finish the same
// store+fence-heavy single-thread sequence no slower.
func TestModelCostOrdering(t *testing.T) {
	base := driveStoreFence(t, NameBaseline, 50)
	hops := driveStoreFence(t, NameHOPSRP, 50)
	asap := driveStoreFence(t, NameASAPRP, 50)
	eadr := driveStoreFence(t, NameEADR, 50)
	t.Logf("baseline=%d hops=%d asap=%d eadr=%d", base, hops, asap, eadr)
	if eadr > asap || asap > base {
		t.Errorf("cost ordering violated: eadr=%d asap=%d baseline=%d", eadr, asap, base)
	}
	// With zero work between fences there is nothing for HOPS's buffering
	// to overlap, so it may run marginally slower than the synchronous
	// baseline (flusher wake-up latency); allow 5%.
	if hops > base*105/100 {
		t.Errorf("HOPS (%d) should be within 5%% of baseline (%d) single-threaded", hops, base)
	}
}

// TestASAPEarlyFlushPath: with ofences but no dfence until the end, ASAP
// issues early flushes and creates undo records at the controllers.
func TestASAPEarlyFlushPath(t *testing.T) {
	env, eng := testEnv(t, NameASAPRP)
	m, _ := New(NameASAPRP, env)
	var chain func(i int)
	chain = func(i int) {
		if i >= 20 {
			m.Dfence(0, func() {})
			return
		}
		m.Store(0, mem.Line(100+i), mem.Token(i+1), func() {
			m.Ofence(0, func() { chain(i + 1) })
		})
	}
	chain(0)
	eng.Run(10_000_000)
	if env.St.Get("totSpecWrites") == 0 {
		t.Error("no early flushes despite a 20-epoch chain")
	}
	if env.St.Get("totalUndo") == 0 {
		t.Error("no undo records created")
	}
	if env.St.Get("mcCommits") == 0 {
		t.Error("no commit messages sent")
	}
}

// TestHOPSNoSpeculation: HOPS must never mark flushes early or touch a
// recovery table.
func TestHOPSNoSpeculation(t *testing.T) {
	env, eng := testEnv(t, NameHOPSRP)
	m, _ := New(NameHOPSRP, env)
	var chain func(i int)
	chain = func(i int) {
		if i >= 20 {
			m.Dfence(0, func() {})
			return
		}
		m.Store(0, mem.Line(100+i), mem.Token(i+1), func() {
			m.Ofence(0, func() { chain(i + 1) })
		})
	}
	chain(0)
	eng.Run(10_000_000)
	if env.St.Get("totSpecWrites") != 0 || env.St.Get("mcEarlyFlushes") != 0 {
		t.Error("HOPS issued early flushes")
	}
}

// TestPMEMSpecMisspeculation: cross-MC epoch chains must trigger
// mis-speculations on a 2-MC machine and none on 1 MC.
func TestPMEMSpecMisspeculation(t *testing.T) {
	run := func(mcs int) uint64 {
		eng := sim.NewEngine()
		cfg := config.Default()
		cfg.MCs = mcs
		st := stats.New()
		mcsArr := make([]*persist.MC, mcs)
		for i := range mcsArr {
			mcsArr[i] = persist.NewMC(i, eng, cfg, false, st)
		}
		env := Env{
			Eng: eng, Cfg: cfg, MCs: mcsArr,
			IL:  mem.NewInterleaver(mcs, cfg.InterleaveBytes),
			Dir: cache.NewDirectory(), St: st, Ledger: NopLedger{},
		}
		m, _ := New(NamePMEMSpec, env)
		var chain func(i int)
		chain = func(i int) {
			if i >= 30 {
				m.Dfence(0, func() {})
				return
			}
			// Alternate controllers between epochs: lines 4 apart map to
			// different MCs with 256 B interleaving.
			m.Store(0, mem.Line(i*4), mem.Token(i+1), func() {
				m.Ofence(0, func() { chain(i + 1) })
			})
		}
		chain(0)
		eng.Run(0)
		return st.Get("specMisspeculations")
	}
	if got := run(2); got == 0 {
		t.Error("expected mis-speculations with 2 controllers")
	}
	if got := run(1); got != 0 {
		t.Errorf("1-MC run mis-speculated %d times; FIFO channel cannot reorder", got)
	}
}

// TestDPOResolvesFasterThanHOPS: with a cross-thread dependency, DPO's
// snooped broadcast resolves it without polling delay.
func TestDPOResolvesFasterThanHOPS(t *testing.T) {
	runDep := func(name string) sim.Cycles {
		env, eng := testEnv(t, name)
		m, _ := New(name, env)
		// Thread 0 writes and releases; thread 1 acquires (dependency),
		// writes, and dfences.
		var t1done bool
		m.Store(0, 100, 1, func() {
			m.Release(0, 500, func() {
				env.Dir.Write(0, 500, 1) // the release store on the lock line
				env.Dir.MarkRelease(0, 500, 1)
				// Thread 1 acquires.
				cf, _ := env.Dir.Read(1, 500, true)
				if cf != nil {
					m.Conflict(1, cf)
				}
				m.Store(1, 104, 2, func() {
					m.Dfence(1, func() { t1done = true })
				})
			})
		})
		eng.Run(10_000_000)
		if !t1done {
			t.Fatalf("%s: dependent dfence never completed", name)
		}
		return eng.Now()
	}
	hops := runDep(NameHOPSRP)
	dpo := runDep(NameDPO)
	t.Logf("hops=%d dpo=%d", hops, dpo)
	if dpo > hops {
		t.Errorf("DPO (%d) should resolve dependencies no slower than polling HOPS (%d)", dpo, hops)
	}
}

// TestEpochCommittedSemantics: committed queries answer correctly across
// retirement for the buffered models.
func TestEpochCommittedSemantics(t *testing.T) {
	for _, name := range []string{NameHOPSRP, NameASAPRP, NameDPO} {
		env, eng := testEnv(t, name)
		m, _ := New(name, env)
		fin := false
		m.Store(0, 100, 1, func() {
			m.Dfence(0, func() { fin = true })
		})
		eng.Run(10_000_000)
		if !fin {
			t.Fatalf("%s: dfence stuck", name)
		}
		if !m.EpochCommitted(persist.EpochID{Thread: 0, TS: 1}) {
			t.Errorf("%s: epoch 1 should be committed after dfence", name)
		}
		if m.EpochCommitted(persist.EpochID{Thread: 0, TS: m.CurrentTS(0)}) && name != NameDPO {
			// The open epoch is never committed for table-based models.
			t.Errorf("%s: open epoch reported committed", name)
		}
	}
}

// TestASAPNackFallback: a tiny recovery table forces NACKs; ASAP must fall
// back to conservative flushing and still complete with everything durable.
func TestASAPNackFallback(t *testing.T) {
	eng := sim.NewEngine()
	cfg := config.Default()
	cfg.RTEntries = 2 // force pressure
	st := stats.New()
	mcs := make([]*persist.MC, cfg.MCs)
	for i := range mcs {
		mcs[i] = persist.NewMC(i, eng, cfg, true, st)
	}
	env := Env{
		Eng: eng, Cfg: cfg, MCs: mcs,
		IL:  mem.NewInterleaver(cfg.MCs, cfg.InterleaveBytes),
		Dir: cache.NewDirectory(), St: st, Ledger: NopLedger{},
	}
	m, _ := New(NameASAPRP, env)

	// A long chain of tiny epochs keeps several uncommitted at once, so
	// early flushes outrun the 2-entry table.
	fenced := false
	var chain func(i int)
	chain = func(i int) {
		if i >= 60 {
			m.Dfence(0, func() { fenced = true })
			return
		}
		m.Store(0, mem.Line(100+i), mem.Token(i+1), func() {
			m.Ofence(0, func() { chain(i + 1) })
		})
	}
	chain(0)
	eng.Run(50_000_000)
	if !fenced {
		t.Fatal("dfence never completed under NACK pressure")
	}
	if st.Get("mcNacks") == 0 {
		t.Fatal("expected NACKs with a 2-entry recovery table")
	}
	if st.Get("pbNacks") == 0 {
		t.Fatal("persist buffer never observed a NACK")
	}
	// Every line still durable.
	for i := 0; i < 60; i++ {
		line := mem.Line(100 + i)
		mc := env.MCs[env.IL.Home(line)]
		if _, inWPQ := mc.WPQ.Contains(line); !inWPQ && mc.NVM.Peek(line) == 0 {
			t.Fatalf("line %d lost under NACK fallback", line)
		}
	}
}

// TestASAPNoEagerAblation: the ablation flag must suppress all early
// flushes.
func TestASAPNoEagerAblation(t *testing.T) {
	eng := sim.NewEngine()
	cfg := config.Default()
	cfg.ASAPNoEager = true
	st := stats.New()
	mcs := make([]*persist.MC, cfg.MCs)
	for i := range mcs {
		mcs[i] = persist.NewMC(i, eng, cfg, true, st)
	}
	env := Env{
		Eng: eng, Cfg: cfg, MCs: mcs,
		IL:  mem.NewInterleaver(cfg.MCs, cfg.InterleaveBytes),
		Dir: cache.NewDirectory(), St: st, Ledger: NopLedger{},
	}
	m, _ := New(NameASAPRP, env)
	done := false
	var chain func(i int)
	chain = func(i int) {
		if i >= 20 {
			m.Dfence(0, func() { done = true })
			return
		}
		m.Store(0, mem.Line(100+i), mem.Token(i+1), func() {
			m.Ofence(0, func() { chain(i + 1) })
		})
	}
	chain(0)
	eng.Run(50_000_000)
	if !done {
		t.Fatal("no-eager ASAP did not complete")
	}
	if st.Get("totSpecWrites") != 0 || st.Get("totalUndo") != 0 {
		t.Fatalf("ablation leaked speculation: spec=%d undo=%d",
			st.Get("totSpecWrites"), st.Get("totalUndo"))
	}
}

// TestVorpalBroadcastProgress: parked flushes must be released by the
// periodic broadcast, and the broadcast must stop once idle (or machines
// would never drain).
func TestVorpalBroadcastProgress(t *testing.T) {
	env, eng := testEnv(t, NameVorpal)
	m, _ := New(NameVorpal, env)
	done := false
	var chain func(i int)
	chain = func(i int) {
		if i >= 10 {
			m.Dfence(0, func() { done = true })
			return
		}
		m.Store(0, mem.Line(i*4), mem.Token(i+1), func() { // alternate MCs
			m.Ofence(0, func() { chain(i + 1) })
		})
	}
	chain(0)
	end := eng.Run(50_000_000)
	if !done {
		t.Fatal("vorpal never drained")
	}
	if env.St.Get("vorpalParked") == 0 {
		t.Error("expected flushes parked behind the clock broadcast")
	}
	if env.St.Get("vorpalBroadcasts") == 0 {
		t.Error("broadcast never ran")
	}
	if eng.Pending() != 0 {
		t.Errorf("events still pending after drain at %d (broadcast leak?)", end)
	}
}

// TestStrandWeaverConcurrentStrands: two strands with interleaved epoch
// chains must drain concurrently — faster than the same chain in one strand.
func TestStrandWeaverConcurrentStrands(t *testing.T) {
	run := func(strands bool) sim.Cycles {
		env, eng := testEnv(t, NameStrandWeaver)
		m, _ := New(NameStrandWeaver, env)
		sw := m.(*StrandWeaver)
		done := false
		var chain func(i int)
		chain = func(i int) {
			if i >= 40 {
				m.Dfence(0, func() { done = true })
				return
			}
			if strands && i%2 == 0 {
				sw.Strand(0)
			}
			m.Store(0, mem.Line(100+i), mem.Token(i+1), func() {
				m.Ofence(0, func() { chain(i + 1) })
			})
		}
		chain(0)
		eng.Run(50_000_000)
		if !done {
			t.Fatal("strandweaver did not drain")
		}
		return eng.Now()
	}
	mono := run(false)
	multi := run(true)
	t.Logf("single-strand=%d multi-strand=%d", mono, multi)
	if multi >= mono {
		t.Errorf("strands (%d) should beat a single strand (%d): epochs flush concurrently", multi, mono)
	}
}

// TestStrandWeaverDependency: a cross-thread dependency still orders
// strands conservatively.
func TestStrandWeaverDependency(t *testing.T) {
	env, eng := testEnv(t, NameStrandWeaver)
	m, _ := New(NameStrandWeaver, env)
	done := false
	m.Store(0, 100, 1, func() {
		m.Release(0, 500, func() {
			env.Dir.Write(0, 500, 1) // the release store on the lock line
			env.Dir.MarkRelease(0, 500, 1)
			cf, _ := env.Dir.Read(1, 500, true)
			if cf != nil {
				m.Conflict(1, cf)
			}
			m.Store(1, 104, 2, func() {
				m.Dfence(1, func() { done = true })
			})
		})
	})
	eng.Run(50_000_000)
	if !done {
		t.Fatal("dependent thread never drained")
	}
	if env.St.Get("interTEpochConflict") != 1 {
		t.Fatalf("deps = %d, want 1", env.St.Get("interTEpochConflict"))
	}
}
