package model

import (
	"testing"

	"asap/internal/mem"
)

// TestConformance drives every model through the same scripted sequence and
// checks protocol invariants shared by all designs:
//
//   - done callbacks fire exactly once per operation;
//   - CurrentTS never decreases;
//   - after StartDrain completes, the persist buffer is empty and every
//     line written is durable (except eADR, whose domain is the cache);
//   - an immediately repeated dfence completes without new work.
func TestConformance(t *testing.T) {
	for _, name := range ExtendedNames() {
		name := name
		t.Run(name, func(t *testing.T) {
			env, eng := testEnv(t, name)
			m, err := New(name, env)
			if err != nil {
				t.Fatal(err)
			}

			doneCalls := 0
			lastTS := uint64(0)
			checkTS := func() {
				ts := m.CurrentTS(0)
				if ts < lastTS {
					t.Fatalf("CurrentTS went backwards: %d -> %d", lastTS, ts)
				}
				lastTS = ts
			}

			lines := []mem.Line{10, 11, 4_000, 4_001, 10} // spans both MCs, repeats one line
			var drained, refenced bool
			var step func(i int)
			step = func(i int) {
				doneCalls++
				checkTS()
				if i >= len(lines) {
					m.StartDrain(0, func() {
						drained = true
						// A dfence right after a drain has nothing to wait for.
						m.Dfence(0, func() { refenced = true })
					})
					return
				}
				m.Store(0, lines[i], mem.Token(i+1), func() {
					if i%2 == 0 {
						m.Ofence(0, func() { step(i + 1) })
					} else {
						step(i + 1)
					}
				})
			}
			step(0)
			eng.Run(20_000_000)

			if !drained || !refenced {
				t.Fatalf("drain=%v refence=%v", drained, refenced)
			}
			if doneCalls != len(lines)+1 {
				t.Fatalf("done callbacks = %d, want %d", doneCalls, len(lines)+1)
			}
			if occ := m.PBOccupancy(0); occ != 0 {
				t.Fatalf("persist buffer not empty after drain: %d", occ)
			}
			if m.PBBlocked(0) {
				t.Fatal("PBBlocked true on an empty buffer")
			}
			if m.PBHasLine(0, lines[0]) {
				t.Fatal("PBHasLine true after drain")
			}
			if name == NameEADR {
				return
			}
			for _, l := range lines {
				mc := env.MCs[env.IL.Home(l)]
				if _, inWPQ := mc.WPQ.Contains(l); !inWPQ && mc.NVM.Peek(l) == 0 {
					t.Fatalf("line %d not durable after drain", l)
				}
			}
		})
	}
}

// TestConformanceReleaseAcquire: the release/acquire pair completes on every
// model and never decreases the timestamp.
func TestConformanceReleaseAcquire(t *testing.T) {
	for _, name := range ExtendedNames() {
		name := name
		t.Run(name, func(t *testing.T) {
			env, eng := testEnv(t, name)
			m, err := New(name, env)
			if err != nil {
				t.Fatal(err)
			}
			done := false
			m.Store(0, 100, 1, func() {
				pre := m.CurrentTS(0)
				m.Release(0, 900, func() {
					if m.CurrentTS(0) < pre {
						t.Errorf("Release decreased TS")
					}
					m.Acquire(1, 900)
					m.Store(1, 104, 2, func() {
						m.StartDrain(1, func() { done = true })
					})
				})
			})
			eng.Run(20_000_000)
			if !done {
				t.Fatal("release/acquire sequence never drained")
			}
		})
	}
}
