package model

import (
	"asap/internal/cache"
	"asap/internal/mem"
	"asap/internal/persist"
	"asap/internal/sim"
	"asap/internal/stats"
)

// LBPP implements LB++ (Joshi et al., MICRO'15, "Efficient persist
// barriers") as the paper characterizes it in §VII-E and Table IV: epoch
// persistency tracked in the cache hierarchy, with the strictest flushing
// discipline of the compared designs — an epoch's writes begin flushing
// only after the epoch is *complete* (closed by a barrier) and all earlier
// epochs have fully persisted. The open epoch's writes sit in the cache.
// Cross-thread dependencies use the same epoch-splitting deadlock avoidance
// (LB++ is where ASAP borrows it from [14]); resolution is by waiting for
// the source epoch to persist, observed through coherence. The paper
// expects LB++ below HOPS and ASAP.
type LBPP struct {
	env   Env
	hc    hotCounters
	cores []*lbppCore
	// waiters[src] lists dependent epochs released when src persists.
	waiters     map[persist.EpochID][]persist.EpochID
	committedTS []uint64
}

type lbppCore struct {
	id int
	pb *persist.PersistBuffer
	et *persist.EpochTable

	flushScheduled bool
	storeWaiters   []func()
	fenceWaiter    func()
	dfenceWaiter   func()
	dfenceStart    sim.Cycles
}

func newLBPP(env Env) *LBPP {
	m := &LBPP{
		env:         env,
		hc:          newHotCounters(env.St),
		waiters:     make(map[persist.EpochID][]persist.EpochID),
		committedTS: make([]uint64, env.Cfg.Cores),
	}
	m.cores = make([]*lbppCore, env.Cfg.Cores)
	for i := range m.cores {
		m.cores[i] = &lbppCore{
			id: i,
			pb: persist.NewPersistBuffer(env.Cfg.PBEntries),
			et: persist.NewEpochTable(i, env.Cfg.ETEntries),
		}
	}
	return m
}

// Name returns "lbpp".
func (m *LBPP) Name() string { return NameLBPP }

// Stats returns the shared stat set.
func (m *LBPP) Stats() *stats.Set { return m.env.St }

// CurrentTS returns the open epoch of the core.
func (m *LBPP) CurrentTS(core int) uint64 { return m.cores[core].et.CurrentTS() }

// EpochCommitted reports whether epoch e has fully persisted.
func (m *LBPP) EpochCommitted(e persist.EpochID) bool {
	return m.committedTS[e.Thread] >= e.TS
}

// Store buffers the write (standing in for the dirty line tracked in the
// cache tags); nothing flushes until the epoch closes.
func (m *LBPP) Store(core int, line mem.Line, token mem.Token, done func()) {
	c := m.cores[core]
	m.tryEnqueue(c, line, token, done)
}

func (m *LBPP) tryEnqueue(c *lbppCore, line mem.Line, token mem.Token, done func()) {
	ts := c.et.CurrentTS()
	coalesced, ok := c.pb.Enqueue(line, token, ts)
	if !ok {
		began := m.env.Eng.Now()
		//asaplint:ignore alloccheck closure-form event scheduling; typed-event conversion of this legacy model is tracked roadmap debt
		c.storeWaiters = append(c.storeWaiters, func() {
			m.hc.cyclesStalled.Add(uint64(m.env.Eng.Now() - began))
			m.tryEnqueue(c, line, token, done)
		})
		m.kickFlusher(c)
		return
	}
	m.hc.entriesInserted.Inc()
	if coalesced {
		m.hc.pbCoalesced.Inc()
	} else {
		c.et.Current().Unacked++
	}
	m.env.Ledger.RecordWrite(persist.EpochID{Thread: c.id, TS: ts}, line, token)
	//asaplint:ignore alloccheck resume/done callback invocation; the callback's creation site carries the alloc proof
	done()
}

// Ofence closes the epoch, which makes it eligible to flush once all its
// predecessors have persisted.
func (m *LBPP) Ofence(core int, done func()) {
	c := m.cores[core]
	if c.et.Full() {
		began := m.env.Eng.Now()
		//asaplint:ignore alloccheck closure-form event scheduling; typed-event conversion of this legacy model is tracked roadmap debt
		c.fenceWaiter = func() {
			m.hc.ofenceStalled.Add(uint64(m.env.Eng.Now() - began))
			m.Ofence(core, done)
		}
		return
	}
	closed := c.et.CurrentTS()
	c.et.Advance()
	m.tryCommit(c, closed)
	m.kickFlusher(c)
	//asaplint:ignore alloccheck resume/done callback invocation; the callback's creation site carries the alloc proof
	done()
}

// Dfence closes the epoch and waits until everything persisted (LB++ has
// no native durability guarantee; this is the drain the paper notes it
// would need, and our workloads require one at end of trace).
func (m *LBPP) Dfence(core int, done func()) {
	c := m.cores[core]
	if c.et.Full() {
		began := m.env.Eng.Now()
		//asaplint:ignore alloccheck closure-form event scheduling; typed-event conversion of this legacy model is tracked roadmap debt
		c.fenceWaiter = func() {
			m.hc.ofenceStalled.Add(uint64(m.env.Eng.Now() - began))
			m.Dfence(core, done)
		}
		return
	}
	closed := c.et.CurrentTS()
	c.et.Advance()
	m.tryCommit(c, closed)
	m.kickFlusher(c)
	if c.et.AllCommitted() {
		//asaplint:ignore alloccheck resume/done callback invocation; the callback's creation site carries the alloc proof
		done()
		return
	}
	if c.dfenceWaiter != nil {
		panic("lbpp: overlapping dfence waits on one core")
	}
	c.dfenceStart = m.env.Eng.Now()
	c.dfenceWaiter = done
}

// Release closes the epoch (epoch persistency: the release is ordered by
// the barrier the workload already issued around it).
func (m *LBPP) Release(core int, line mem.Line, done func()) {
	m.Ofence(core, done)
}

// Acquire needs no direct action.
func (m *LBPP) Acquire(core int, line mem.Line) {}

// Conflict applies the epoch-persistency dependency policy with the
// epoch-splitting rule LB++ introduced.
func (m *LBPP) Conflict(core int, cf *cache.Conflict) {
	if !cf.Remote {
		return
	}
	w := m.cores[cf.Writer]
	src := persist.EpochID{Thread: cf.Writer, TS: w.et.CurrentTS()}
	m.hc.interTEpochConflict.Inc()
	if w.et.CurrentTS() == src.TS {
		w.et.Advance()
		m.tryCommit(w, src.TS)
		m.kickFlusher(w)
	}
	c := m.cores[core]
	prev := c.et.CurrentTS()
	c.et.Advance()
	m.tryCommit(c, prev)
	cur := c.et.Current()
	if !m.EpochCommitted(src) {
		//asaplint:ignore alloccheck legacy model bookkeeping growth, bounded by workload footprint; outside the zero-alloc gate
		cur.Deps = append(cur.Deps, src)
		dst := persist.EpochID{Thread: core, TS: cur.TS}
		//asaplint:ignore alloccheck legacy model map bounded by workload footprint; outside the zero-alloc gate
		m.waiters[src] = append(m.waiters[src], dst)
		m.env.Ledger.DepCreated(src, dst)
	}
}

// StartDrain gives end-of-trace dfence semantics.
func (m *LBPP) StartDrain(core int, done func()) { m.Dfence(core, done) }

// PBOccupancy, PBBlocked and PBHasLine feed the sampler and WBB.
func (m *LBPP) PBOccupancy(core int) int { return m.cores[core].pb.Len() }

func (m *LBPP) PBBlocked(core int) bool {
	c := m.cores[core]
	if c.pb.Empty() {
		return false
	}
	return m.nextFlushable(c) == nil && c.pb.Inflight() == 0
}

func (m *LBPP) PBHasLine(core int, line mem.Line) bool {
	return m.cores[core].pb.HasLine(line)
}

// nextFlushable: strictest discipline — only the oldest epoch flushes, and
// only once it is closed and its dependencies persisted.
func (m *LBPP) nextFlushable(c *lbppCore) *persist.PBEntry {
	oldest := c.et.OldestTS()
	ent, ok := c.et.Get(oldest)
	if !ok {
		return nil
	}
	if !ent.Closed || !ent.DepsResolved() {
		return nil
	}
	//asaplint:ignore alloccheck closure-form event scheduling; typed-event conversion of this legacy model is tracked roadmap debt
	return c.pb.NextWaiting(func(e *persist.PBEntry) bool { return e.TS == oldest })
}

func (m *LBPP) kickFlusher(c *lbppCore) {
	if c.flushScheduled {
		return
	}
	c.flushScheduled = true
	//asaplint:ignore alloccheck closure-form event scheduling; typed-event conversion of this legacy model is tracked roadmap debt
	m.env.Eng.After(1, func() {
		c.flushScheduled = false
		m.flushOne(c)
	})
}

func (m *LBPP) flushOne(c *lbppCore) {
	if c.pb.Inflight() >= m.env.Cfg.PBMaxInflight {
		return
	}
	e := m.nextFlushable(c)
	if e == nil {
		return
	}
	c.pb.MarkInflight(e, false)
	pkt := persist.FlushPacket{
		Line:  e.Line,
		Token: e.Token,
		Epoch: persist.EpochID{Thread: c.id, TS: e.TS},
	}
	id := e.ID
	//asaplint:ignore alloccheck closure-form flush reply; typed-event conversion of this legacy model is tracked roadmap debt
	m.env.Link.Flush(m.env.IL.Home(e.Line), pkt, func(res persist.FlushResult) {
		if res != persist.FlushAck {
			panic("lbpp: controller NACKed a safe flush")
		}
		m.onAck(c, id)
	})
	if c.pb.Inflight() < m.env.Cfg.PBMaxInflight {
		//asaplint:ignore alloccheck closure-form event scheduling; typed-event conversion of this legacy model is tracked roadmap debt
		m.env.Eng.After(flushIssuePace, func() { m.flushOne(c) })
	}
}

func (m *LBPP) onAck(c *lbppCore, id uint64) {
	e, ok := c.pb.Ack(id)
	if !ok {
		panic("lbpp: ACK for unknown persist buffer entry")
	}
	if ent, ok := c.et.Get(e.TS); ok {
		ent.Unacked--
		m.tryCommit(c, e.TS)
	}
	if len(c.storeWaiters) > 0 {
		w := c.storeWaiters[0]
		c.storeWaiters = c.storeWaiters[1:]
		w()
	}
	m.kickFlusher(c)
}

func (m *LBPP) tryCommit(c *lbppCore, ts uint64) {
	ent, ok := c.et.Get(ts)
	if !ok || ent.Committed {
		return
	}
	if !ent.Closed || ent.Unacked != 0 || !ent.DepsResolved() || !c.et.PrevCommitted(ts) {
		return
	}
	ent.Committed = true
	m.committedTS[c.id] = ts
	m.hc.epochsCommitted.Inc()
	epoch := persist.EpochID{Thread: c.id, TS: ts}
	m.env.Ledger.EpochCommitted(epoch)
	c.et.Retire(ts)

	if deps := m.waiters[epoch]; len(deps) > 0 {
		delete(m.waiters, epoch)
		for _, dst := range deps {
			dst := dst
			//asaplint:ignore alloccheck closure-form event scheduling; typed-event conversion of this legacy model is tracked roadmap debt
			m.env.Eng.After(m.env.Cfg.MsgLat, func() { m.resolve(dst) })
		}
	}

	m.tryCommit(c, ts+1)
	if c.fenceWaiter != nil && !c.et.Full() {
		w := c.fenceWaiter
		c.fenceWaiter = nil
		//asaplint:ignore alloccheck resume/done callback invocation; the callback's creation site carries the alloc proof
		w()
	}
	if c.dfenceWaiter != nil && c.et.AllCommitted() {
		w := c.dfenceWaiter
		c.dfenceWaiter = nil
		m.hc.dfenceStalled.Add(uint64(m.env.Eng.Now() - c.dfenceStart))
		//asaplint:ignore alloccheck resume/done callback invocation; the callback's creation site carries the alloc proof
		w()
	}
	m.kickFlusher(c)
}

func (m *LBPP) resolve(dst persist.EpochID) {
	c := m.cores[dst.Thread]
	if ent, ok := c.et.Get(dst.TS); ok {
		ent.Resolved++
		m.tryCommit(c, dst.TS)
	}
	m.kickFlusher(c)
}

var _ Model = (*LBPP)(nil)
