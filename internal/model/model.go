// Package model implements the persistence architectures the ASAP paper
// evaluates (§VII): the synchronous Intel baseline (clwb+sfence), HOPS with
// epoch or release persistency, ASAP with epoch or release persistency, and
// an eADR/BBB ideal. All models sit behind one Model interface driven by the
// machine (package machine), which feeds them the program's stores, fences
// and synchronization operations and reports coherence conflicts.
package model

import (
	"fmt"

	"asap/internal/cache"
	"asap/internal/config"
	"asap/internal/mem"
	"asap/internal/obs"
	"asap/internal/persist"
	"asap/internal/sim"
	"asap/internal/stats"
)

// Ledger receives ground-truth notifications used by the crash checker: the
// epoch each persistent write was issued under, the cross-thread dependency
// edges each model created, and epoch commits. The machine implements it.
type Ledger interface {
	// RecordWrite logs that a persistent write of token to line entered
	// the persist path under epoch e.
	RecordWrite(e persist.EpochID, line mem.Line, token mem.Token)
	// DepCreated logs a dependency: dst must not survive a crash unless
	// src does.
	DepCreated(src, dst persist.EpochID)
	// EpochCommitted logs that epoch e committed (guaranteed durable).
	EpochCommitted(e persist.EpochID)
}

// NopLedger discards all notifications.
type NopLedger struct{}

func (NopLedger) RecordWrite(persist.EpochID, mem.Line, mem.Token) {}
func (NopLedger) DepCreated(persist.EpochID, persist.EpochID)      {}
func (NopLedger) EpochCommitted(persist.EpochID)                   {}

// Env is everything a model needs from the machine.
type Env struct {
	Eng    *sim.Engine
	Cfg    config.Config
	MCs    []*persist.MC
	IL     *mem.Interleaver
	Dir    *cache.Directory
	St     *stats.Set
	Ledger Ledger

	// Link carries every model→controller message (flushes, commits) and
	// the replies. On a serial machine it is a passthrough that reproduces
	// the models' former event schedule exactly; on a sharded machine it is
	// the cross-shard ring fabric. New defaults it to a serial link over
	// Eng when left nil.
	Link *persist.Link
}

// Model is one persistence architecture. Methods taking a done callback may
// delay it to stall the core; they must invoke it exactly once. Conflict and
// Acquire/Release bookkeeping never stalls the calling core directly.
type Model interface {
	Name() string

	// Store enters a persistent write into the model's persist path.
	Store(core int, line mem.Line, token mem.Token, done func())
	// Ofence orders earlier writes of the thread before later ones.
	Ofence(core int, done func())
	// Dfence additionally guarantees earlier writes are durable.
	Dfence(core int, done func())
	// Release/Acquire are the one-sided synchronization barriers of
	// release persistency applied to lock/flag line.
	Release(core int, line mem.Line, done func())
	Acquire(core int, line mem.Line)

	// Conflict reports a coherence event where the accessed line was
	// last modified by another core; the model decides whether it is a
	// cross-thread persist dependency.
	Conflict(core int, cf *cache.Conflict)

	// CurrentTS returns the core's open epoch timestamp.
	CurrentTS(core int) uint64
	// EpochCommitted reports whether epoch e is guaranteed durable.
	EpochCommitted(e persist.EpochID) bool

	// StartDrain is called at end-of-trace: done fires when everything
	// the core wrote is durable (dfence semantics).
	StartDrain(core int, done func())

	// PBOccupancy and PBBlocked feed the periodic sampler (Figures 3 and
	// 11). Models without persist buffers report 0/false.
	PBOccupancy(core int) int
	PBBlocked(core int) bool
	// PBHasLine reports whether the core's persist buffer still holds an
	// unpersisted write to the line; the machine's write-back buffer
	// (§V-F) parks LLC evictions of such lines.
	PBHasLine(core int, line mem.Line) bool

	// Stats returns the model's stat set (shared with Env.St).
	Stats() *stats.Set
}

// Traced is implemented by models that can emit trace events. The machine
// calls AttachTracer before the simulation starts; models without the
// method simply stay silent in traces.
type Traced interface {
	AttachTracer(tr obs.Tracer)
}

// EpochTabled is implemented by models with per-core epoch tables; the
// machine's timeline sampler uses it to record epoch-table size. Models
// without the method report no epoch-table columns.
type EpochTabled interface {
	ETLen(core int) int
}

// Names of the six evaluated designs, plus the two related-work designs
// implemented to make Table IV quantitative.
const (
	NameBaseline     = "baseline"
	NameHOPSEP       = "hops_ep"
	NameHOPSRP       = "hops_rp"
	NameASAPEP       = "asap_ep"
	NameASAPRP       = "asap_rp"
	NameEADR         = "eadr"
	NameDPO          = "dpo"
	NamePMEMSpec     = "pmem_spec"
	NameLBPP         = "lbpp"
	NameLRP          = "lrp"
	NameVorpal       = "vorpal"
	NameStrandWeaver = "strandweaver"
)

// Known reports whether name is one of the implemented designs (the
// evaluated six plus the related-work set) without building a model —
// asapd validates request specs against it.
func Known(name string) bool {
	for _, n := range ExtendedNames() {
		if n == name {
			return true
		}
	}
	return false
}

// Speculative reports whether the named model needs recovery tables at the
// memory controllers.
func Speculative(name string) bool {
	return name == NameASAPEP || name == NameASAPRP
}

// Shardable reports whether the named model tolerates its memory
// controllers living on separate timing domains (sharded machines). Every
// controller interaction must then cross the Link with at least the
// cluster lookahead of modeled latency. Vorpal cannot: its park/persist
// decisions and periodic clock broadcasts touch the controllers
// synchronously (persistNow calls Receive with zero latency at broadcast
// ticks), so a sharded run of vorpal falls back to the serial engine.
func Shardable(name string) bool { return name != NameVorpal }

// New builds the named model.
func New(name string, env Env) (Model, error) {
	if env.Ledger == nil {
		env.Ledger = NopLedger{}
	}
	if env.Link == nil {
		env.Link = persist.NewLink(env.Eng, env.Cfg, env.MCs)
	}
	switch name {
	case NameBaseline:
		return newBaseline(env), nil
	case NameHOPSEP:
		return newHOPS(env, false), nil
	case NameHOPSRP:
		return newHOPS(env, true), nil
	case NameASAPEP:
		return newASAP(env, false), nil
	case NameASAPRP:
		return newASAP(env, true), nil
	case NameEADR:
		return newEADR(env), nil
	case NameDPO:
		return newDPO(env), nil
	case NamePMEMSpec:
		return newPMEMSpec(env), nil
	case NameLBPP:
		return newLBPP(env), nil
	case NameLRP:
		return newLRP(env), nil
	case NameVorpal:
		return newVorpal(env), nil
	case NameStrandWeaver:
		return newStrandWeaver(env), nil
	default:
		return nil, fmt.Errorf("model: unknown model %q (have %v)", name, AllNames())
	}
}

// AllNames lists the six models the paper evaluates, in its presentation
// order (Figure 8, left to right).
func AllNames() []string {
	return []string{NameBaseline, NameHOPSEP, NameHOPSRP, NameASAPEP, NameASAPRP, NameEADR}
}

// ExtendedNames adds the related-work designs built for the quantitative
// Table IV comparison (lbpp, dpo, lrp, vorpal, pmem_spec).
func ExtendedNames() []string {
	return append(AllNames(), NameLBPP, NameDPO, NameLRP, NameVorpal, NameStrandWeaver, NamePMEMSpec)
}

// flushIssuePace is the minimum spacing between flush issues from one
// persist buffer (models a single flush port).
const flushIssuePace sim.Cycles = 4
