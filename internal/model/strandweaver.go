package model

import (
	"asap/internal/cache"
	"asap/internal/mem"
	"asap/internal/persist"
	"asap/internal/sim"
	"asap/internal/stats"
)

// StrandModel is the optional extension for models that understand strand
// persistency: the machine forwards trace strand boundaries (OpStrand) to
// Strand. Models without it treat strands as ordinary program order, which
// is a conservative superset of the required ordering.
type StrandModel interface {
	Strand(core int)
}

// StrandWeaver implements strand persistency (Gogte et al., ISCA'20) as the
// paper characterizes it in §VII-E: a thread's execution divides into
// *strands*; persists in different strands have no ordering constraint, so
// their epochs flush concurrently — "it performs better than HOPS as it
// allows epochs from different strands to be flushed concurrently" — while
// within a strand flushing is conservative (epoch by epoch), and
// cross-strand/cross-thread dependencies from strong persist atomicity are
// also handled conservatively. The paper flags integrating ASAP with strand
// persistency as follow-on work; this model provides the StrandWeaver
// baseline for that comparison (experiment abl_strands).
type StrandWeaver struct {
	env   Env
	hc    hotCounters
	cores []*swCore
	// waiters[src] lists dependent epochs notified when src commits.
	waiters   map[persist.EpochID][]persist.EpochID
	committed map[persist.EpochID]bool
}

type swCore struct {
	id int
	pb *persist.PersistBuffer

	strands []*swStrand
	cur     int // active strand index
	nextTS  uint64

	flushScheduled bool
	storeWaiters   []func()
	dfenceWaiter   func()
	dfenceStart    sim.Cycles
}

type swStrand struct {
	epochs []*swEpoch // FIFO: oldest first; last entry is open
}

type swEpoch struct {
	ts       uint64 // globally unique per core across strands
	unacked  int
	closed   bool
	deps     []persist.EpochID
	resolved int
}

func (e *swEpoch) depsResolved() bool { return e.resolved >= len(e.deps) }

func newStrandWeaver(env Env) *StrandWeaver {
	m := &StrandWeaver{
		env:       env,
		hc:        newHotCounters(env.St),
		waiters:   make(map[persist.EpochID][]persist.EpochID),
		committed: make(map[persist.EpochID]bool),
	}
	m.cores = make([]*swCore, env.Cfg.Cores)
	for i := range m.cores {
		m.cores[i] = newSWCore(i, env.Cfg.PBEntries)
	}
	return m
}

func newSWCore(id, pbEntries int) *swCore {
	c := &swCore{id: id, pb: persist.NewPersistBuffer(pbEntries), nextTS: 1}
	c.strands = []*swStrand{{epochs: []*swEpoch{{ts: 1}}}}
	c.nextTS = 2
	return c
}

// Name returns "strandweaver".
func (m *StrandWeaver) Name() string { return NameStrandWeaver }

// Stats returns the shared stat set.
func (m *StrandWeaver) Stats() *stats.Set { return m.env.St }

// Strand opens a fresh strand; its epochs are unordered against the other
// strands of the thread.
func (m *StrandWeaver) Strand(core int) {
	c := m.cores[core]
	// Close the current strand's open epoch so it can commit.
	m.closeOpen(c, c.strands[c.cur])
	//asaplint:ignore alloccheck legacy model bookkeeping growth, bounded by workload footprint; outside the zero-alloc gate
	c.strands = append(c.strands, &swStrand{epochs: []*swEpoch{{ts: c.nextTS}}})
	c.nextTS++
	c.cur = len(c.strands) - 1
	m.hc.swStrands.Inc()
	m.tryCommitAll(c)
}

func (c *swCore) open() *swEpoch {
	s := c.strands[c.cur]
	return s.epochs[len(s.epochs)-1]
}

// epochByTS finds a live epoch by timestamp.
func (c *swCore) epochByTS(ts uint64) (*swStrand, *swEpoch) {
	for _, s := range c.strands {
		for _, e := range s.epochs {
			if e.ts == ts {
				return s, e
			}
		}
	}
	return nil, nil
}

// CurrentTS returns the open epoch of the active strand.
func (m *StrandWeaver) CurrentTS(core int) uint64 { return m.cores[core].open().ts }

// EpochCommitted reports whether the epoch retired. Strand epochs of one
// thread are NOT totally ordered, so the crash checker's same-thread prefix
// assumption does not apply to this model (see DESIGN.md).
func (m *StrandWeaver) EpochCommitted(e persist.EpochID) bool { return m.committed[e] }

// Store buffers the write in the active strand's open epoch.
func (m *StrandWeaver) Store(core int, line mem.Line, token mem.Token, done func()) {
	c := m.cores[core]
	m.tryEnqueue(c, line, token, done)
}

func (m *StrandWeaver) tryEnqueue(c *swCore, line mem.Line, token mem.Token, done func()) {
	e := c.open()
	coalesced, ok := c.pb.Enqueue(line, token, e.ts)
	if !ok {
		began := m.env.Eng.Now()
		//asaplint:ignore alloccheck closure-form event scheduling; typed-event conversion of this legacy model is tracked roadmap debt
		c.storeWaiters = append(c.storeWaiters, func() {
			m.hc.cyclesStalled.Add(uint64(m.env.Eng.Now() - began))
			m.tryEnqueue(c, line, token, done)
		})
		m.kickFlusher(c)
		return
	}
	m.hc.entriesInserted.Inc()
	if coalesced {
		m.hc.pbCoalesced.Inc()
	} else {
		e.unacked++
	}
	m.env.Ledger.RecordWrite(persist.EpochID{Thread: c.id, TS: e.ts}, line, token)
	m.kickFlusher(c)
	//asaplint:ignore alloccheck resume/done callback invocation; the callback's creation site carries the alloc proof
	done()
}

// closeOpen closes the open epoch of strand s and opens its successor.
func (m *StrandWeaver) closeOpen(c *swCore, s *swStrand) {
	open := s.epochs[len(s.epochs)-1]
	if open.closed {
		return
	}
	open.closed = true
	//asaplint:ignore alloccheck legacy model bookkeeping growth, bounded by workload footprint; outside the zero-alloc gate
	s.epochs = append(s.epochs, &swEpoch{ts: c.nextTS})
	c.nextTS++
}

// Ofence is a strand-local persist barrier.
func (m *StrandWeaver) Ofence(core int, done func()) {
	c := m.cores[core]
	m.closeOpen(c, c.strands[c.cur])
	m.tryCommitAll(c)
	//asaplint:ignore alloccheck resume/done callback invocation; the callback's creation site carries the alloc proof
	done()
}

// Dfence waits until every strand has drained.
func (m *StrandWeaver) Dfence(core int, done func()) {
	c := m.cores[core]
	for _, s := range c.strands {
		m.closeOpen(c, s)
	}
	m.tryCommitAll(c)
	if m.drained(c) {
		//asaplint:ignore alloccheck resume/done callback invocation; the callback's creation site carries the alloc proof
		done()
		return
	}
	if c.dfenceWaiter != nil {
		panic("strandweaver: overlapping dfence waits on one core")
	}
	c.dfenceStart = m.env.Eng.Now()
	c.dfenceWaiter = done
	m.kickFlusher(c)
}

// drained: every strand holds only its single empty open epoch.
func (m *StrandWeaver) drained(c *swCore) bool {
	for _, s := range c.strands {
		for _, e := range s.epochs {
			if e.closed || e.unacked > 0 {
				return false
			}
		}
	}
	return true
}

// Release closes the active strand's epoch (one-sided barrier).
func (m *StrandWeaver) Release(core int, line mem.Line, done func()) {
	c := m.cores[core]
	m.closeOpen(c, c.strands[c.cur])
	m.tryCommitAll(c)
	done()
}

// Acquire needs no direct action; Conflict carries the dependency.
func (m *StrandWeaver) Acquire(core int, line mem.Line) {}

// Conflict: cross-thread (and hence cross-strand) dependencies are handled
// conservatively — the dependent epoch's strand blocks until the source
// epoch commits.
func (m *StrandWeaver) Conflict(core int, cf *cache.Conflict) {
	if !cf.AcquireOnRelease {
		return
	}
	src := persist.EpochID{Thread: cf.Writer, TS: cf.WriterTS}
	if m.committed[src] {
		return
	}
	m.hc.interTEpochConflict.Inc()
	w := m.cores[src.Thread]
	if _, we := w.epochByTS(src.TS); we != nil && !we.closed {
		m.closeOpen(w, mustStrand(w, src.TS))
		m.tryCommitAll(w)
	}
	c := m.cores[core]
	m.closeOpen(c, c.strands[c.cur])
	dst := c.open()
	if !m.committed[src] {
		//asaplint:ignore alloccheck legacy model bookkeeping growth, bounded by workload footprint; outside the zero-alloc gate
		dst.deps = append(dst.deps, src)
		id := persist.EpochID{Thread: core, TS: dst.ts}
		//asaplint:ignore alloccheck legacy model map bounded by workload footprint; outside the zero-alloc gate
		m.waiters[src] = append(m.waiters[src], id)
		m.env.Ledger.DepCreated(src, id)
	}
	m.tryCommitAll(c)
}

func mustStrand(c *swCore, ts uint64) *swStrand {
	s, _ := c.epochByTS(ts)
	if s == nil {
		panic("strandweaver: strand for epoch not found")
	}
	return s
}

// StartDrain gives end-of-trace dfence semantics.
func (m *StrandWeaver) StartDrain(core int, done func()) { m.Dfence(core, done) }

// PBOccupancy, PBBlocked, PBHasLine feed the sampler and WBB.
func (m *StrandWeaver) PBOccupancy(core int) int { return m.cores[core].pb.Len() }

func (m *StrandWeaver) PBBlocked(core int) bool {
	c := m.cores[core]
	if c.pb.Empty() {
		return false
	}
	return c.pb.NextWaiting(m.eligible(c)) == nil && c.pb.Inflight() == 0
}

func (m *StrandWeaver) PBHasLine(core int, line mem.Line) bool {
	return m.cores[core].pb.HasLine(line)
}

// eligible: within each strand only the oldest epoch flushes (conservative),
// but all strands flush concurrently — the design's point.
func (m *StrandWeaver) eligible(c *swCore) func(*persist.PBEntry) bool {
	heads := make(map[uint64]bool)
	for _, s := range c.strands {
		if len(s.epochs) == 0 {
			continue
		}
		head := s.epochs[0]
		if head.depsResolved() {
			heads[head.ts] = true
		}
	}
	//asaplint:ignore alloccheck closure-form event scheduling; typed-event conversion of this legacy model is tracked roadmap debt
	return func(e *persist.PBEntry) bool { return heads[e.TS] }
}

func (m *StrandWeaver) kickFlusher(c *swCore) {
	if c.flushScheduled {
		return
	}
	c.flushScheduled = true
	//asaplint:ignore alloccheck closure-form event scheduling; typed-event conversion of this legacy model is tracked roadmap debt
	m.env.Eng.After(1, func() {
		c.flushScheduled = false
		m.flushOne(c)
	})
}

func (m *StrandWeaver) flushOne(c *swCore) {
	if c.pb.Inflight() >= m.env.Cfg.PBMaxInflight {
		return
	}
	e := c.pb.NextWaiting(m.eligible(c))
	if e == nil {
		return
	}
	c.pb.MarkInflight(e, false)
	pkt := persist.FlushPacket{
		Line:  e.Line,
		Token: e.Token,
		Epoch: persist.EpochID{Thread: c.id, TS: e.TS},
	}
	id := e.ID
	//asaplint:ignore alloccheck closure-form flush reply; typed-event conversion of this legacy model is tracked roadmap debt
	m.env.Link.Flush(m.env.IL.Home(e.Line), pkt, func(res persist.FlushResult) {
		if res != persist.FlushAck {
			panic("strandweaver: controller NACKed a safe flush")
		}
		m.onAck(c, id)
	})
	if c.pb.Inflight() < m.env.Cfg.PBMaxInflight {
		//asaplint:ignore alloccheck closure-form event scheduling; typed-event conversion of this legacy model is tracked roadmap debt
		m.env.Eng.After(flushIssuePace, func() { m.flushOne(c) })
	}
}

func (m *StrandWeaver) onAck(c *swCore, id uint64) {
	e, ok := c.pb.Ack(id)
	if !ok {
		panic("strandweaver: ACK for unknown persist buffer entry")
	}
	if _, ep := c.epochByTS(e.TS); ep != nil {
		ep.unacked--
	}
	m.tryCommitAll(c)
	if len(c.storeWaiters) > 0 {
		w := c.storeWaiters[0]
		c.storeWaiters = c.storeWaiters[1:]
		w()
	}
	m.kickFlusher(c)
}

// tryCommitAll retires every strand-head epoch that is closed, drained and
// dependency-free, then notifies dependents.
func (m *StrandWeaver) tryCommitAll(c *swCore) {
	progress := true
	for progress {
		progress = false
		for _, s := range c.strands {
			for len(s.epochs) > 0 {
				head := s.epochs[0]
				// Never retire the strand's open epoch.
				if !head.closed || head.unacked != 0 || !head.depsResolved() {
					break
				}
				s.epochs = s.epochs[1:]
				epoch := persist.EpochID{Thread: c.id, TS: head.ts}
				//asaplint:ignore alloccheck legacy model map bounded by workload footprint; outside the zero-alloc gate
				m.committed[epoch] = true
				m.hc.epochsCommitted.Inc()
				m.env.Ledger.EpochCommitted(epoch)
				if deps := m.waiters[epoch]; len(deps) > 0 {
					delete(m.waiters, epoch)
					for _, dst := range deps {
						dst := dst
						//asaplint:ignore alloccheck closure-form event scheduling; typed-event conversion of this legacy model is tracked roadmap debt
						m.env.Eng.After(m.env.Cfg.MsgLat, func() { m.resolve(dst) })
					}
				}
				progress = true
			}
		}
	}
	// Garbage-collect fully drained strands (everything committed, only
	// the empty open epoch left) other than the active one, so long runs
	// do not accumulate strand state.
	live := c.strands[:0]
	for i, s := range c.strands {
		if i == c.cur || len(s.epochs) != 1 || s.epochs[0].closed || s.epochs[0].unacked != 0 {
			//asaplint:ignore alloccheck legacy model bookkeeping growth, bounded by workload footprint; outside the zero-alloc gate
			live = append(live, s)
		}
	}
	if len(live) != len(c.strands) {
		// Recompute the active index against the compacted slice.
		cur := c.strands[c.cur]
		c.strands = live
		for i, s := range c.strands {
			if s == cur {
				c.cur = i
				break
			}
		}
	}

	if c.dfenceWaiter != nil && m.drained(c) {
		w := c.dfenceWaiter
		c.dfenceWaiter = nil
		m.hc.dfenceStalled.Add(uint64(m.env.Eng.Now() - c.dfenceStart))
		//asaplint:ignore alloccheck resume/done callback invocation; the callback's creation site carries the alloc proof
		w()
	}
	m.kickFlusher(c)
}

func (m *StrandWeaver) resolve(dst persist.EpochID) {
	c := m.cores[dst.Thread]
	if _, e := c.epochByTS(dst.TS); e != nil {
		e.resolved++
	}
	m.tryCommitAll(c)
}

var _ Model = (*StrandWeaver)(nil)
var _ StrandModel = (*StrandWeaver)(nil)
