package model

import (
	"fmt"

	"asap/internal/cache"
	"asap/internal/mem"
	"asap/internal/obs"
	"asap/internal/persist"
	"asap/internal/sim"
	"asap/internal/stats"
)

// ASAP implements the paper's design: per-core persist buffers flush writes
// eagerly — possibly out of epoch order and before cross-thread dependencies
// resolve — marking flushes from not-yet-safe epochs as early. The memory
// controllers (persist.MC) speculatively update memory and keep undo/delay
// records per Table I. Epoch tables run the commit protocol of §V-C: commit
// messages to the controllers that saw early flushes, then CDR messages to
// dependent threads. A NACK (full recovery table) drops the buffer into
// conservative flushing until the NACKed epoch commits (§V-D).
// Typed-event kinds dispatched through ASAP.RunEvent, covering the
// per-write flusher hot path (kick and pace); the PB→MC sends and ET→MC
// commit messages travel through Env.Link instead.
const (
	asapEvKick = iota // flusher wake-up for core arg (clears flushScheduled)
	asapEvPace        // next paced flush issue for core arg
	asapEvCDR         // deliver a CDR; arg is the packed dependent EpochID
)

// ASAP runs on the CPU timing domain of a sharded machine: all controller
// interaction (flush issue, commit broadcast, NACK retries) crosses the
// Link, never a direct MC call — domaincheck enforces it.
//
//asap:domain cpu
type ASAP struct {
	env Env
	hc  hotCounters
	rp  bool // release persistency (vs epoch persistency)

	cores []*asapCore

	trc      obs.Tracer // nil unless tracing; every use must be nil-guarded
	pbTracks []obs.TrackID
}

// packEpochArg squeezes an EpochID into a typed event's uint64 arg: thread
// in the low byte (config caps cores at 64), timestamp above. The guard
// trips long before a real run could reach 2^56 epochs.
func packEpochArg(e persist.EpochID) uint64 {
	if uint64(e.Thread) > 0xFF || e.TS >= 1<<56 {
		panic("asap: epoch id does not fit a packed event arg")
	}
	return e.TS<<8 | uint64(e.Thread)
}

func unpackEpochArg(arg uint64) persist.EpochID {
	return persist.EpochID{Thread: int(arg & 0xFF), TS: arg >> 8}
}

type asapCore struct {
	id int
	m  *ASAP // back-pointer for the FlushReplier implementation
	pb *persist.PersistBuffer
	et *persist.EpochTable

	// conservative flushing mode after a NACK; cleared when consTS commits.
	conservative bool
	consTS       uint64

	flushScheduled bool

	// eligibleFn is the flush-eligibility predicate handed to
	// PersistBuffer.NextWaiting, built once so the per-flush path does not
	// recreate the closure.
	eligibleFn func(*persist.PBEntry) bool

	// stalled operations.
	storeWaiters []func()
	fenceWaiter  func() // blocked ofence (epoch table full)
	dfenceWaiter func() // blocked dfence or drain
	dfenceStart  sim.Cycles
}

func newASAP(env Env, rp bool) *ASAP {
	m := &ASAP{env: env, hc: newHotCounters(env.St), rp: rp}
	m.cores = make([]*asapCore, env.Cfg.Cores)
	for i := range m.cores {
		m.cores[i] = &asapCore{
			id: i,
			m:  m,
			pb: persist.NewPersistBuffer(env.Cfg.PBEntries),
			et: persist.NewEpochTable(i, env.Cfg.ETEntries),
		}
		c := m.cores[i]
		c.eligibleFn = func(e *persist.PBEntry) bool { return m.eligible(c, e) }
	}
	return m
}

// RunEvent dispatches the model's typed events.
func (m *ASAP) RunEvent(kind int, arg uint64) {
	switch kind {
	case asapEvKick:
		c := m.cores[arg]
		c.flushScheduled = false
		m.flushOne(c)
	case asapEvPace:
		m.flushOne(m.cores[arg])
	case asapEvCDR:
		m.deliverCDR(unpackEpochArg(arg))
	default:
		panic("asap: unknown event kind")
	}
}

// CommitAck receives a controller's commit ACK for epoch e (the typed
// analogue of the per-commit done closure).
func (m *ASAP) CommitAck(e persist.EpochID) {
	c := m.cores[e.Thread]
	ent, ok := c.et.Get(e.TS)
	if !ok {
		panic("asap: commit ACK for retired epoch")
	}
	ent.CommitAcks--
	if ent.CommitAcks == 0 {
		m.finishCommit(c, ent)
	}
}

// FlushReply receives the controller's ACK/NACK for the persist buffer
// entry identified by arg (the typed analogue of the per-flush reply
// closure).
func (c *asapCore) FlushReply(arg uint64, res persist.FlushResult) {
	c.m.onFlushReply(c, arg, res)
}

// Name returns asap_ep or asap_rp.
func (m *ASAP) Name() string {
	if m.rp {
		return NameASAPRP
	}
	return NameASAPEP
}

// Stats returns the shared stat set.
func (m *ASAP) Stats() *stats.Set { return m.env.St }

// AttachTracer wires tr into the persist path: one "core<i> pb" track per
// core (sorted under the machine's core track) carries persist-buffer
// counters, early-flush/NACK instants, conservative-mode spans, and
// epoch-lifecycle events. Call before the simulation starts.
func (m *ASAP) AttachTracer(tr obs.Tracer) {
	m.trc = tr
	m.pbTracks = make([]obs.TrackID, len(m.cores))
	for i, c := range m.cores {
		m.pbTracks[i] = tr.Track(fmt.Sprintf("core%d pb", i), 2*i+1)
		c.pb.AttachTracer(tr, m.pbTracks[i])
	}
}

// ETLen reports the core's live epoch-table entries (timeline sampling).
func (m *ASAP) ETLen(core int) int { return m.cores[core].et.Len() }

// traceEpoch records an epoch-lifecycle instant plus the table occupancy.
func (m *ASAP) traceEpoch(c *asapCore, ev string) {
	if m.trc != nil {
		t := m.pbTracks[c.id]
		m.trc.Instant(t, ev)
		m.trc.Counter(t, "et", int64(c.et.Len()))
	}
}

// CurrentTS returns the open epoch of the core.
func (m *ASAP) CurrentTS(core int) uint64 { return m.cores[core].et.CurrentTS() }

// EpochCommitted reports durability of epoch e: retired entries are
// committed; live entries carry their state.
func (m *ASAP) EpochCommitted(e persist.EpochID) bool {
	c := m.cores[e.Thread]
	if ent, ok := c.et.Get(e.TS); ok {
		return ent.Committed
	}
	// Absent entries below the current TS were retired after committing.
	return e.TS < c.et.CurrentTS() || e.TS < c.et.OldestTS()
}

// epochSafe reports whether epoch ts satisfies all ordering constraints:
// the preceding epoch committed and all cross dependencies resolved (§IV-B).
func (m *ASAP) epochSafe(c *asapCore, ts uint64) bool {
	ent, ok := c.et.Get(ts)
	if !ok {
		return true // retired == committed == safe
	}
	return c.et.PrevCommitted(ts) && ent.DepsResolved()
}

// Store enqueues the write in the persist buffer, stalling the core when
// the buffer is full (cyclesStalled).
func (m *ASAP) Store(core int, line mem.Line, token mem.Token, done func()) {
	c := m.cores[core]
	m.tryEnqueue(c, line, token, done)
}

func (m *ASAP) tryEnqueue(c *asapCore, line mem.Line, token mem.Token, done func()) {
	ts := c.et.CurrentTS()
	coalesced, ok := c.pb.Enqueue(line, token, ts)
	if !ok {
		began := m.env.Eng.Now()
		//asaplint:ignore alloccheck PB-full stall continuation; stalls are the cold path by definition
		c.storeWaiters = append(c.storeWaiters, func() {
			m.hc.cyclesStalled.Add(uint64(m.env.Eng.Now() - began))
			m.tryEnqueue(c, line, token, done)
		})
		m.kickFlusher(c)
		return
	}
	m.hc.entriesInserted.Inc()
	if coalesced {
		m.hc.pbCoalesced.Inc()
	} else {
		c.et.Current().Unacked++
	}
	m.env.Ledger.RecordWrite(persist.EpochID{Thread: c.id, TS: ts}, line, token)
	m.kickFlusher(c)
	done() //asaplint:ignore alloccheck done is the core's resume callback, built once at machine construction
}

// Ofence closes the current epoch (§V-A): increment the timestamp and add a
// new epoch table entry, stalling if the table is full.
func (m *ASAP) Ofence(core int, done func()) {
	c := m.cores[core]
	if c.et.Full() {
		began := m.env.Eng.Now()
		//asaplint:ignore alloccheck epoch-table-full stall continuation; stalls are the cold path by definition
		c.fenceWaiter = func() {
			m.hc.ofenceStalled.Add(uint64(m.env.Eng.Now() - began))
			m.Ofence(core, done)
		}
		return
	}
	closed := c.et.CurrentTS()
	c.et.Advance()
	m.traceEpoch(c, "epoch close")
	m.tryCommit(c, closed)
	done() //asaplint:ignore alloccheck done is the core's resume callback, built once at machine construction
}

// Dfence waits until every in-flight epoch of the thread has committed.
func (m *ASAP) Dfence(core int, done func()) {
	c := m.cores[core]
	if c.et.Full() {
		began := m.env.Eng.Now()
		//asaplint:ignore alloccheck epoch-table-full stall continuation; stalls are the cold path by definition
		c.fenceWaiter = func() {
			m.hc.ofenceStalled.Add(uint64(m.env.Eng.Now() - began))
			m.Dfence(core, done)
		}
		return
	}
	closed := c.et.CurrentTS()
	c.et.Advance()
	m.traceEpoch(c, "epoch close")
	m.tryCommit(c, closed)
	m.waitAllCommitted(c, done)
}

func (m *ASAP) waitAllCommitted(c *asapCore, done func()) {
	if c.et.AllCommitted() {
		done() //asaplint:ignore alloccheck done is the core's resume callback, built once at machine construction
		return
	}
	if c.dfenceWaiter != nil {
		panic("asap: overlapping dfence waits on one core")
	}
	c.dfenceStart = m.env.Eng.Now()
	c.dfenceWaiter = done
	m.kickFlusher(c)
}

// Release is a one-sided barrier: writes preceding it must persist before
// it, so the epoch containing those writes is closed. The machine tags the
// lock line with the closed epoch after performing the release store, so a
// later acquire can find the release epoch (§IV-A).
func (m *ASAP) Release(core int, line mem.Line, done func()) {
	c := m.cores[core]
	if m.rp && !c.et.Full() {
		relTS := c.et.CurrentTS()
		c.et.Advance()
		m.traceEpoch(c, "epoch close")
		m.tryCommit(c, relTS)
	}
	// Under epoch persistency a release is an ordinary store; the
	// workload's explicit ofences provide intra-thread ordering and the
	// coherence conflict on the lock line provides the cross-thread
	// dependency.
	done()
}

// Acquire needs no direct action: the dependency, if any, arrives through
// Conflict when the lock line is read.
func (m *ASAP) Acquire(core int, line mem.Line) {}

// Conflict applies the dependency policy. With release persistency only an
// acquire that synchronizes with a release creates a dependency; with epoch
// persistency any remote dirty-line transfer does (§IV-E).
func (m *ASAP) Conflict(core int, cf *cache.Conflict) {
	src, ok := m.depSource(cf)
	if !ok {
		return
	}
	m.addDependency(core, src)
}

// depSource extracts the source epoch of a potential dependency per the
// model's persistency policy, reporting ok=false when no dependency arises.
func (m *ASAP) depSource(cf *cache.Conflict) (persist.EpochID, bool) {
	if m.rp {
		if !cf.AcquireOnRelease {
			return persist.EpochID{}, false
		}
		src := persist.EpochID{Thread: cf.Writer, TS: cf.WriterTS}
		return src, !m.EpochCommitted(src)
	}
	if !cf.Remote {
		return persist.EpochID{}, false
	}
	// The owner replies with its *current* epoch number and splits
	// (deadlock avoidance borrowed from [14]).
	w := m.cores[cf.Writer]
	src := persist.EpochID{Thread: cf.Writer, TS: w.et.CurrentTS()}
	return src, true
}

// addDependency records that the requesting core's next writes depend on
// epoch src, splitting epochs on both sides per §IV-E.
func (m *ASAP) addDependency(core int, src persist.EpochID) {
	m.hc.interTEpochConflict.Inc()
	w := m.cores[src.Thread]
	// Source side: close the source epoch so it can commit. This split is
	// unconditional — leaving the source epoch open could deadlock two
	// mutually-dependent blocked cores (Lemma 0.1 requires it).
	if w.et.CurrentTS() == src.TS {
		w.et.Advance()
		m.traceEpoch(w, "epoch split")
		m.tryCommit(w, src.TS)
	}
	// Dependent side: open a new epoch carrying the dependency.
	c := m.cores[core]
	prev := c.et.CurrentTS()
	c.et.Advance()
	m.traceEpoch(c, "epoch split")
	m.tryCommit(c, prev)
	cur := c.et.Current()
	dst := persist.EpochID{Thread: core, TS: cur.TS}
	if ent, ok := w.et.Get(src.TS); ok && !ent.Committed {
		cur.Deps = append(cur.Deps, src)             //asaplint:ignore alloccheck conflict-only path; fan-out bounded by live epochs
		ent.Dependents = append(ent.Dependents, dst) //asaplint:ignore alloccheck conflict-only path; fan-out bounded by live epochs
		m.env.Ledger.DepCreated(src, dst)
	}
	// If the source epoch committed between the check and here, no
	// dependency is needed.
}

// StartDrain gives end-of-trace dfence semantics.
func (m *ASAP) StartDrain(core int, done func()) {
	m.Dfence(core, done)
}

// PBOccupancy and PBBlocked feed the sampler.
func (m *ASAP) PBOccupancy(core int) int { return m.cores[core].pb.Len() }

// PBBlocked reports a non-empty buffer with nothing eligible to flush —
// with eager flushing this happens only in conservative (post-NACK) mode.
func (m *ASAP) PBBlocked(core int) bool {
	c := m.cores[core]
	if c.pb.Empty() {
		return false
	}
	return c.pb.NextWaiting(func(e *persist.PBEntry) bool { return m.eligible(c, e) }) == nil &&
		c.pb.Inflight() == 0
}

// eligible implements the flush policy: eager mode issues anything not
// NACKed; NACKed entries (and everything in conservative mode, or always
// under the ASAPNoEager ablation) must wait for epoch safety and reissue as
// safe flushes.
func (m *ASAP) eligible(c *asapCore, e *persist.PBEntry) bool {
	if m.env.Cfg.ASAPNoEager || c.conservative || e.Nacked {
		return m.epochSafe(c, e.TS)
	}
	return true
}

func (m *ASAP) kickFlusher(c *asapCore) {
	if c.flushScheduled {
		return
	}
	c.flushScheduled = true
	m.env.Eng.AfterOp(1, m, asapEvKick, uint64(c.id))
}

// flushOne issues at most one flush, then reschedules itself while work
// remains (one flush port per buffer, paced at flushIssuePace).
func (m *ASAP) flushOne(c *asapCore) {
	if c.pb.Inflight() >= m.env.Cfg.PBMaxInflight {
		return // an ACK will kick us again
	}
	e := c.pb.NextWaiting(c.eligibleFn)
	if e == nil {
		return
	}
	early := !m.epochSafe(c, e.TS)
	retried := e.Nacked
	c.pb.MarkInflight(e, early)
	mcID := m.env.IL.Home(e.Line)
	if early {
		m.hc.totSpecWrites.Inc()
		if m.trc != nil {
			m.trc.Instant(m.pbTracks[c.id], "early flush")
		}
		if ent, ok := c.et.Get(e.TS); ok {
			ent.AddEarlyMC(mcID)
		}
	}
	pkt := persist.FlushPacket{
		Line:  e.Line,
		Token: e.Token,
		Epoch: persist.EpochID{Thread: c.id, TS: e.TS},
		Early: early,
	}
	// retried clears the MC's NACK Bloom filter entry on arrival, releasing
	// any delayed LLC eviction (§V-F); the Link applies that at delivery.
	m.env.Link.FlushOp(mcID, pkt, c, e.ID, retried)
	if c.pb.Inflight() < m.env.Cfg.PBMaxInflight {
		m.env.Eng.AfterOp(flushIssuePace, m, asapEvPace, uint64(c.id))
	}
}

func (m *ASAP) onFlushReply(c *asapCore, id uint64, res persist.FlushResult) {
	if res == persist.FlushNack {
		e := c.pb.Nack(id)
		if e == nil {
			panic("asap: NACK for unknown persist buffer entry")
		}
		m.hc.pbNacks.Inc()
		if m.trc != nil {
			m.trc.Instant(m.pbTracks[c.id], "nack")
		}
		if ent, ok := c.et.Get(e.TS); ok {
			ent.Nacked = true
		}
		if !c.conservative || e.TS < c.consTS {
			if !c.conservative && m.trc != nil {
				// Entering conservative flushing (§V-D): span lasts until
				// the NACKed epoch commits.
				m.trc.Begin(m.pbTracks[c.id], "conservative")
			}
			c.conservative = true
			c.consTS = e.TS
		}
		m.kickFlusher(c)
		return
	}
	e, ok := c.pb.Ack(id)
	if !ok {
		panic("asap: ACK for unknown persist buffer entry")
	}
	if ent, ok := c.et.Get(e.TS); ok {
		ent.Unacked--
		if ent.Unacked < 0 {
			panic("asap: negative unacked count")
		}
		m.tryCommit(c, e.TS)
	}
	// Freed buffer space: wake one stalled store.
	if len(c.storeWaiters) > 0 {
		w := c.storeWaiters[0]
		c.storeWaiters = c.storeWaiters[1:]
		w() //asaplint:ignore alloccheck stall-resume continuation: only runs after a store already stalled (cold by definition)
	}
	m.kickFlusher(c)
}

// tryCommit runs the epoch commit state machine for epoch ts of core c:
// when safe and complete, send commit messages to the controllers that saw
// early flushes; once all acknowledge, the epoch is committed and CDR
// messages notify dependent threads (§V-C).
func (m *ASAP) tryCommit(c *asapCore, ts uint64) {
	ent, ok := c.et.Get(ts)
	if !ok || ent.Committed || ent.CommitSent {
		return
	}
	safe := c.et.PrevCommitted(ts) && ent.DepsResolved()
	complete := ent.Closed && ent.Unacked == 0
	if !safe || !complete {
		return
	}
	ent.CommitSent = true
	if ent.EarlyMCs == 0 {
		m.finishCommit(c, ent)
		return
	}
	ent.CommitAcks = ent.EarlyMCCount()
	epoch := persist.EpochID{Thread: c.id, TS: ts}
	// Commit messages are issued in ascending controller order so the
	// event sequence (and hence every downstream tie-break) is reproducible.
	// Each rides the Link at MsgLat; the ACK comes back through CommitAck.
	for id, mask := 0, ent.EarlyMCs; mask != 0; id, mask = id+1, mask>>1 {
		if mask&1 == 0 {
			continue
		}
		m.env.Link.CommitOp(id, epoch, m)
	}
}

func (m *ASAP) finishCommit(c *asapCore, ent *persist.ETEntry) {
	ent.Committed = true
	ts := ent.TS
	m.hc.epochsCommitted.Inc()
	m.env.Ledger.EpochCommitted(persist.EpochID{Thread: c.id, TS: ts})

	// Leaving conservative mode: the NACKed epoch has committed, so its
	// recovery-table pressure is gone (§V-D).
	if c.conservative && ts >= c.consTS {
		c.conservative = false
		if m.trc != nil {
			m.trc.End(m.pbTracks[c.id])
		}
	}

	// CDR messages to dependent threads (typed: the dependent EpochID is
	// packed into the event arg, so no per-message closure).
	for _, dep := range ent.Dependents {
		m.env.Eng.AfterOp(m.env.Cfg.MsgLat, m, asapEvCDR, packEpochArg(dep))
	}

	c.et.Retire(ts)
	m.traceEpoch(c, "epoch commit")

	// Committing may unblock: the next epoch's commit, a stalled ofence
	// (table space freed), a dfence, and the flusher (epochs became safe).
	m.tryCommit(c, ts+1)
	if c.fenceWaiter != nil && !c.et.Full() {
		w := c.fenceWaiter
		c.fenceWaiter = nil
		w() //asaplint:ignore alloccheck stall-resume continuation: only runs after an ofence already stalled (cold by definition)
	}
	if c.dfenceWaiter != nil && c.et.AllCommitted() {
		w := c.dfenceWaiter
		c.dfenceWaiter = nil
		m.hc.dfenceStalled.Add(uint64(m.env.Eng.Now() - c.dfenceStart))
		w() //asaplint:ignore alloccheck stall-resume continuation: only runs after a dfence already stalled (cold by definition)
	}
	m.kickFlusher(c)
}

// deliverCDR resolves one dependency at the dependent core.
func (m *ASAP) deliverCDR(dst persist.EpochID) {
	c := m.cores[dst.Thread]
	ent, ok := c.et.Get(dst.TS)
	if !ok {
		panic("asap: CDR for retired epoch")
	}
	ent.Resolved++
	m.tryCommit(c, dst.TS)
	m.kickFlusher(c)
}

var (
	_ Model       = (*ASAP)(nil)
	_ Traced      = (*ASAP)(nil)
	_ EpochTabled = (*ASAP)(nil)
)

// PBHasLine reports whether the core's persist buffer holds the line.
func (m *ASAP) PBHasLine(core int, line mem.Line) bool {
	return m.cores[core].pb.HasLine(line)
}
