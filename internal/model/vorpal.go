package model

import (
	"asap/internal/cache"
	"asap/internal/mem"
	"asap/internal/persist"
	"asap/internal/sim"
	"asap/internal/stats"
)

// Vorpal implements the vector-clock design of Korgaonkar et al. (PODC'19)
// as the paper characterizes it in §III and §VII-E: one of the few schemes
// that addresses multi-controller ordering, but by *delaying writes at the
// memory controller* until vector clocks prove them safe, with the
// controllers broadcasting their clocks periodically — "the broadcast
// frequency determines the rate of forward progress". Persist buffers issue
// eagerly (no core-side ordering stalls), every flush carries a vector
// timestamp (tag cost accounted in stats), and each controller parks the
// flush until its last-broadcast view shows all of the thread's earlier
// epochs persisted everywhere.
type Vorpal struct {
	env   Env
	hc    hotCounters
	cores []*vorpalCore

	// persisted[t][mc] = highest epoch of thread t fully persisted at mc.
	persisted [][]uint64
	// visible[t] = min over controllers of persisted as of the last
	// broadcast — the view each controller orders against.
	visible []uint64
	// pending flushes parked at each controller.
	pending [][]vorpalFlush
	// deps[e] lists cross-thread epochs e's writes must wait for — the
	// information real Vorpal encodes in the vector timestamps.
	deps map[persist.EpochID][]persist.EpochID

	broadcastOn bool
}

type vorpalFlush struct {
	line   mem.Line
	token  mem.Token
	epoch  persist.EpochID
	pbID   uint64
	core   int
	parked sim.Cycles
}

type vorpalCore struct {
	id int
	pb *persist.PersistBuffer
	et *persist.EpochTable

	// unpersisted[ts] counts writes of epoch ts not yet persisted at any
	// controller (parked or in flight).
	flushScheduled bool
	storeWaiters   []func()
	fenceWaiter    func()
	dfenceWaiter   func()
	dfenceStart    sim.Cycles
}

// vorpalBroadcastInterval is the inter-controller clock broadcast period;
// the paper notes it bounds forward progress.
const vorpalBroadcastInterval sim.Cycles = 500

func newVorpal(env Env) *Vorpal {
	m := &Vorpal{env: env, hc: newHotCounters(env.St)}
	m.cores = make([]*vorpalCore, env.Cfg.Cores)
	m.persisted = make([][]uint64, env.Cfg.Cores)
	m.visible = make([]uint64, env.Cfg.Cores)
	m.pending = make([][]vorpalFlush, env.Cfg.MCs)
	m.deps = make(map[persist.EpochID][]persist.EpochID)
	for i := range m.cores {
		m.cores[i] = &vorpalCore{
			id: i,
			pb: persist.NewPersistBuffer(env.Cfg.PBEntries),
			et: persist.NewEpochTable(i, env.Cfg.ETEntries),
		}
		m.persisted[i] = make([]uint64, env.Cfg.MCs)
	}
	return m
}

// Name returns "vorpal".
func (m *Vorpal) Name() string { return NameVorpal }

// Stats returns the shared stat set.
func (m *Vorpal) Stats() *stats.Set { return m.env.St }

// CurrentTS returns the open epoch of the core.
func (m *Vorpal) CurrentTS(core int) uint64 { return m.cores[core].et.CurrentTS() }

// EpochCommitted: committed when persisted at every controller.
func (m *Vorpal) EpochCommitted(e persist.EpochID) bool {
	for _, p := range m.persisted[e.Thread] {
		if p < e.TS {
			return false
		}
	}
	// Persisted counters only advance when the epoch table retires the
	// epoch, which requires all earlier epochs too; see onPersisted.
	return true
}

// Store enqueues into the persist buffer; flushing is eager (the delaying
// happens controller-side).
func (m *Vorpal) Store(core int, line mem.Line, token mem.Token, done func()) {
	c := m.cores[core]
	m.tryEnqueue(c, line, token, done)
}

func (m *Vorpal) tryEnqueue(c *vorpalCore, line mem.Line, token mem.Token, done func()) {
	ts := c.et.CurrentTS()
	coalesced, ok := c.pb.Enqueue(line, token, ts)
	if !ok {
		began := m.env.Eng.Now()
		//asaplint:ignore alloccheck closure-form event scheduling; typed-event conversion of this legacy model is tracked roadmap debt
		c.storeWaiters = append(c.storeWaiters, func() {
			m.hc.cyclesStalled.Add(uint64(m.env.Eng.Now() - began))
			m.tryEnqueue(c, line, token, done)
		})
		m.kickFlusher(c)
		return
	}
	m.hc.entriesInserted.Inc()
	m.hc.vorpalTagBytes.Add(uint64(m.env.Cfg.Cores * 2)) // vector timestamp per store
	if coalesced {
		m.hc.pbCoalesced.Inc()
	} else {
		c.et.Current().Unacked++
	}
	m.env.Ledger.RecordWrite(persist.EpochID{Thread: c.id, TS: ts}, line, token)
	m.kickFlusher(c)
	//asaplint:ignore alloccheck resume/done callback invocation; the callback's creation site carries the alloc proof
	done()
}

// Ofence closes the epoch.
func (m *Vorpal) Ofence(core int, done func()) {
	c := m.cores[core]
	if c.et.Full() {
		began := m.env.Eng.Now()
		//asaplint:ignore alloccheck closure-form event scheduling; typed-event conversion of this legacy model is tracked roadmap debt
		c.fenceWaiter = func() {
			m.hc.ofenceStalled.Add(uint64(m.env.Eng.Now() - began))
			m.Ofence(core, done)
		}
		return
	}
	closed := c.et.CurrentTS()
	c.et.Advance()
	m.tryRetire(c, closed)
	//asaplint:ignore alloccheck resume/done callback invocation; the callback's creation site carries the alloc proof
	done()
}

// Dfence waits for everything to persist at the controllers.
func (m *Vorpal) Dfence(core int, done func()) {
	c := m.cores[core]
	if c.et.Full() {
		began := m.env.Eng.Now()
		//asaplint:ignore alloccheck closure-form event scheduling; typed-event conversion of this legacy model is tracked roadmap debt
		c.fenceWaiter = func() {
			m.hc.ofenceStalled.Add(uint64(m.env.Eng.Now() - began))
			m.Dfence(core, done)
		}
		return
	}
	closed := c.et.CurrentTS()
	c.et.Advance()
	m.tryRetire(c, closed)
	if c.et.AllCommitted() {
		//asaplint:ignore alloccheck resume/done callback invocation; the callback's creation site carries the alloc proof
		done()
		return
	}
	if c.dfenceWaiter != nil {
		panic("vorpal: overlapping dfence waits on one core")
	}
	c.dfenceStart = m.env.Eng.Now()
	c.dfenceWaiter = done
	m.kickFlusher(c)
}

// Release closes the epoch (release persistency).
func (m *Vorpal) Release(core int, line mem.Line, done func()) {
	c := m.cores[core]
	if !c.et.Full() {
		relTS := c.et.CurrentTS()
		c.et.Advance()
		m.tryRetire(c, relTS)
	}
	done()
}

// Acquire needs no direct action.
func (m *Vorpal) Acquire(core int, line mem.Line) {}

// Conflict: in Vorpal cross-thread ordering flows through the vector
// clocks at the controllers; an acquire still splits the source epoch so
// its clock advances.
func (m *Vorpal) Conflict(core int, cf *cache.Conflict) {
	if !cf.AcquireOnRelease {
		return
	}
	src := persist.EpochID{Thread: cf.Writer, TS: cf.WriterTS}
	if m.EpochCommitted(src) {
		return
	}
	m.hc.interTEpochConflict.Inc()
	w := m.cores[src.Thread]
	if w.et.CurrentTS() == src.TS {
		w.et.Advance()
		m.tryRetire(w, src.TS)
	}
	// The dependent epoch's writes will park at the controllers until
	// the broadcast shows the source persisted; record the edge for the
	// crash checker.
	c := m.cores[core]
	prev := c.et.CurrentTS()
	c.et.Advance()
	m.tryRetire(c, prev)
	dst := persist.EpochID{Thread: core, TS: c.et.CurrentTS()}
	//asaplint:ignore alloccheck legacy model map bounded by workload footprint; outside the zero-alloc gate
	m.deps[dst] = append(m.deps[dst], src)
	m.env.Ledger.DepCreated(src, dst)
}

// StartDrain gives end-of-trace dfence semantics.
func (m *Vorpal) StartDrain(core int, done func()) { m.Dfence(core, done) }

// PBOccupancy, PBBlocked, PBHasLine feed the sampler and WBB.
func (m *Vorpal) PBOccupancy(core int) int { return m.cores[core].pb.Len() }

func (m *Vorpal) PBBlocked(core int) bool { return false } // issue is eager

func (m *Vorpal) PBHasLine(core int, line mem.Line) bool {
	return m.cores[core].pb.HasLine(line)
}

func (m *Vorpal) kickFlusher(c *vorpalCore) {
	if c.flushScheduled {
		return
	}
	c.flushScheduled = true
	m.ensureBroadcast()
	//asaplint:ignore alloccheck closure-form event scheduling; typed-event conversion of this legacy model is tracked roadmap debt
	m.env.Eng.After(1, func() {
		c.flushScheduled = false
		m.flushOne(c)
	})
}

// flushOne issues eagerly in FIFO order; the controller does the delaying.
func (m *Vorpal) flushOne(c *vorpalCore) {
	if c.pb.Inflight() >= m.env.Cfg.PBMaxInflight {
		return
	}
	//asaplint:ignore alloccheck closure-form event scheduling; typed-event conversion of this legacy model is tracked roadmap debt
	e := c.pb.NextWaiting(func(*persist.PBEntry) bool { return true })
	if e == nil {
		return
	}
	c.pb.MarkInflight(e, false)
	mcID := m.env.IL.Home(e.Line)
	fl := vorpalFlush{
		line: e.Line, token: e.Token,
		epoch: persist.EpochID{Thread: c.id, TS: e.TS},
		pbID:  e.ID, core: c.id,
	}
	//asaplint:ignore alloccheck closure-form event scheduling; typed-event conversion of this legacy model is tracked roadmap debt
	m.env.Eng.After(m.env.Cfg.FlushLat, func() { m.arrive(mcID, fl) })
	if c.pb.Inflight() < m.env.Cfg.PBMaxInflight {
		//asaplint:ignore alloccheck closure-form event scheduling; typed-event conversion of this legacy model is tracked roadmap debt
		m.env.Eng.After(flushIssuePace, func() { m.flushOne(c) })
	}
}

// arrive parks or persists a flush at controller mcID.
func (m *Vorpal) arrive(mcID int, fl vorpalFlush) {
	if m.safeToPersist(fl.epoch) {
		m.persistNow(mcID, fl)
		return
	}
	fl.parked = m.env.Eng.Now()
	m.pending[mcID] = append(m.pending[mcID], fl)
	m.hc.vorpalParked.Inc()
}

// safeToPersist: all earlier epochs of the thread — and every recorded
// cross-thread dependency — are visible as persisted everywhere (per the
// last clock broadcast).
func (m *Vorpal) safeToPersist(e persist.EpochID) bool {
	if m.visible[e.Thread] < e.TS-1 {
		return false
	}
	for _, src := range m.deps[e] {
		if m.visible[src.Thread] < src.TS {
			return false
		}
	}
	return true
}

func (m *Vorpal) persistNow(mcID int, fl vorpalFlush) {
	mc := m.env.MCs[mcID]
	mc.Receive(persist.FlushPacket{Line: fl.line, Token: fl.token, Epoch: fl.epoch},
		//asaplint:ignore alloccheck closure-form event scheduling; typed-event conversion of this legacy model is tracked roadmap debt
		func(res persist.FlushResult) {
			if res != persist.FlushAck {
				panic("vorpal: controller NACKed a flush")
			}
			m.onPersisted(mcID, fl)
		})
}

func (m *Vorpal) onPersisted(mcID int, fl vorpalFlush) {
	c := m.cores[fl.core]
	e, ok := c.pb.Ack(fl.pbID)
	if !ok {
		panic("vorpal: ACK for unknown persist buffer entry")
	}
	if ent, ok := c.et.Get(e.TS); ok {
		ent.Unacked--
		m.tryRetire(c, e.TS)
	}
	if len(c.storeWaiters) > 0 {
		w := c.storeWaiters[0]
		c.storeWaiters = c.storeWaiters[1:]
		w()
	}
	m.kickFlusher(c)
}

// tryRetire marks an epoch persisted once closed, drained and in order.
func (m *Vorpal) tryRetire(c *vorpalCore, ts uint64) {
	ent, ok := c.et.Get(ts)
	if !ok || ent.Committed {
		return
	}
	if !ent.Closed || ent.Unacked != 0 || !c.et.PrevCommitted(ts) {
		return
	}
	ent.Committed = true
	for mcID := range m.persisted[c.id] {
		m.persisted[c.id][mcID] = ts
	}
	m.hc.epochsCommitted.Inc()
	m.env.Ledger.EpochCommitted(persist.EpochID{Thread: c.id, TS: ts})
	c.et.Retire(ts)
	m.tryRetire(c, ts+1)
	if c.fenceWaiter != nil && !c.et.Full() {
		w := c.fenceWaiter
		c.fenceWaiter = nil
		//asaplint:ignore alloccheck resume/done callback invocation; the callback's creation site carries the alloc proof
		w()
	}
	if c.dfenceWaiter != nil && c.et.AllCommitted() {
		w := c.dfenceWaiter
		c.dfenceWaiter = nil
		m.hc.dfenceStalled.Add(uint64(m.env.Eng.Now() - c.dfenceStart))
		//asaplint:ignore alloccheck resume/done callback invocation; the callback's creation site carries the alloc proof
		w()
	}
}

// ensureBroadcast starts the periodic inter-controller clock exchange.
func (m *Vorpal) ensureBroadcast() {
	if m.broadcastOn {
		return
	}
	m.broadcastOn = true
	var tick func()
	//asaplint:ignore alloccheck closure-form event scheduling; typed-event conversion of this legacy model is tracked roadmap debt
	tick = func() {
		m.hc.vorpalBroadcasts.Inc()
		// Update every thread's globally visible clock.
		for t := range m.visible {
			min := ^uint64(0)
			for _, p := range m.persisted[t] {
				if p < min {
					min = p
				}
			}
			m.visible[t] = min
		}
		// Release parked flushes that became safe.
		for mcID := range m.pending {
			var rest []vorpalFlush
			for _, fl := range m.pending[mcID] {
				if m.safeToPersist(fl.epoch) {
					m.hc.vorpalParkCycles.Add(uint64(m.env.Eng.Now() - fl.parked))
					m.persistNow(mcID, fl)
				} else {
					rest = append(rest, fl)
				}
			}
			m.pending[mcID] = rest
		}
		if m.busy() {
			m.env.Eng.After(vorpalBroadcastInterval, tick)
		} else {
			// Nothing in flight: stop ticking so the engine can drain;
			// kickFlusher restarts the broadcast on new work.
			m.broadcastOn = false
		}
	}
	m.env.Eng.After(vorpalBroadcastInterval, tick)
}

// busy reports whether any controller or persist buffer holds work.
func (m *Vorpal) busy() bool {
	for _, pend := range m.pending {
		if len(pend) > 0 {
			return true
		}
	}
	for _, c := range m.cores {
		if !c.pb.Empty() {
			return true
		}
	}
	return false
}

var _ Model = (*Vorpal)(nil)
