package model

import (
	"asap/internal/cache"
	"asap/internal/mem"
	"asap/internal/persist"
	"asap/internal/sim"
	"asap/internal/stats"
)

// HOPS implements the comparison design from Nalli et al. [6] as configured
// in the ASAP paper (§VII): per-core persist buffers with *conservative*
// flushing — only the oldest uncommitted epoch may flush, and an epoch with
// an unresolved cross-thread dependency blocks the buffer entirely. Cross
// dependencies resolve by polling a global timestamp register every
// HOPSPollInterval cycles at HOPSPollCost per access (the paper's updated,
// realistic polling parameters). All flushes are safe; the controllers need
// no recovery table.
type HOPS struct {
	env Env
	hc  hotCounters
	rp  bool

	cores []*hopsCore
	// globalTS[t] is the highest committed epoch timestamp of thread t —
	// HOPS's global TS register, the shared structure the paper calls a
	// scaling bottleneck.
	globalTS []uint64
}

type hopsCore struct {
	id int
	pb *persist.PersistBuffer
	et *persist.EpochTable

	flushScheduled bool
	pollScheduled  bool

	storeWaiters []func()
	fenceWaiter  func()
	dfenceWaiter func()
	dfenceStart  sim.Cycles
}

func newHOPS(env Env, rp bool) *HOPS {
	m := &HOPS{env: env, hc: newHotCounters(env.St), rp: rp, globalTS: make([]uint64, env.Cfg.Cores)}
	m.cores = make([]*hopsCore, env.Cfg.Cores)
	for i := range m.cores {
		m.cores[i] = &hopsCore{
			id: i,
			pb: persist.NewPersistBuffer(env.Cfg.PBEntries),
			et: persist.NewEpochTable(i, env.Cfg.ETEntries),
		}
	}
	return m
}

// Name returns hops_ep or hops_rp.
func (m *HOPS) Name() string {
	if m.rp {
		return NameHOPSRP
	}
	return NameHOPSEP
}

// Stats returns the shared stat set.
func (m *HOPS) Stats() *stats.Set { return m.env.St }

// CurrentTS returns the open epoch of the core.
func (m *HOPS) CurrentTS(core int) uint64 { return m.cores[core].et.CurrentTS() }

// EpochCommitted consults the global TS register.
func (m *HOPS) EpochCommitted(e persist.EpochID) bool {
	return m.globalTS[e.Thread] >= e.TS
}

// Store enqueues into the persist buffer, stalling on a full buffer.
func (m *HOPS) Store(core int, line mem.Line, token mem.Token, done func()) {
	c := m.cores[core]
	m.tryEnqueue(c, line, token, done)
}

func (m *HOPS) tryEnqueue(c *hopsCore, line mem.Line, token mem.Token, done func()) {
	ts := c.et.CurrentTS()
	coalesced, ok := c.pb.Enqueue(line, token, ts)
	if !ok {
		began := m.env.Eng.Now()
		//asaplint:ignore alloccheck closure-form event scheduling; typed-event conversion of this legacy model is tracked roadmap debt
		c.storeWaiters = append(c.storeWaiters, func() {
			m.hc.cyclesStalled.Add(uint64(m.env.Eng.Now() - began))
			m.tryEnqueue(c, line, token, done)
		})
		m.kickFlusher(c)
		return
	}
	m.hc.entriesInserted.Inc()
	if coalesced {
		m.hc.pbCoalesced.Inc()
	} else {
		c.et.Current().Unacked++
	}
	m.env.Ledger.RecordWrite(persist.EpochID{Thread: c.id, TS: ts}, line, token)
	m.kickFlusher(c)
	//asaplint:ignore alloccheck resume/done callback invocation; the callback's creation site carries the alloc proof
	done()
}

// Ofence closes the epoch.
func (m *HOPS) Ofence(core int, done func()) {
	c := m.cores[core]
	if c.et.Full() {
		began := m.env.Eng.Now()
		//asaplint:ignore alloccheck closure-form event scheduling; typed-event conversion of this legacy model is tracked roadmap debt
		c.fenceWaiter = func() {
			m.hc.ofenceStalled.Add(uint64(m.env.Eng.Now() - began))
			m.Ofence(core, done)
		}
		return
	}
	closed := c.et.CurrentTS()
	c.et.Advance()
	m.tryCommit(c, closed)
	//asaplint:ignore alloccheck resume/done callback invocation; the callback's creation site carries the alloc proof
	done()
}

// Dfence drains the persist buffer completely.
func (m *HOPS) Dfence(core int, done func()) {
	c := m.cores[core]
	if c.et.Full() {
		began := m.env.Eng.Now()
		//asaplint:ignore alloccheck closure-form event scheduling; typed-event conversion of this legacy model is tracked roadmap debt
		c.fenceWaiter = func() {
			m.hc.ofenceStalled.Add(uint64(m.env.Eng.Now() - began))
			m.Dfence(core, done)
		}
		return
	}
	closed := c.et.CurrentTS()
	c.et.Advance()
	m.tryCommit(c, closed)
	if c.et.AllCommitted() {
		//asaplint:ignore alloccheck resume/done callback invocation; the callback's creation site carries the alloc proof
		done()
		return
	}
	if c.dfenceWaiter != nil {
		panic("hops: overlapping dfence waits on one core")
	}
	c.dfenceStart = m.env.Eng.Now()
	c.dfenceWaiter = done
	m.kickFlusher(c)
}

// Release closes the epoch under release persistency; the machine tags the
// lock line with the closed epoch.
func (m *HOPS) Release(core int, line mem.Line, done func()) {
	c := m.cores[core]
	if m.rp && !c.et.Full() {
		relTS := c.et.CurrentTS()
		c.et.Advance()
		m.tryCommit(c, relTS)
	}
	done()
}

// Acquire needs no direct action; Conflict carries the dependency.
func (m *HOPS) Acquire(core int, line mem.Line) {}

// Conflict applies the same dependency policy as ASAP but resolution will
// happen by polling rather than CDR messages.
func (m *HOPS) Conflict(core int, cf *cache.Conflict) {
	var src persist.EpochID
	if m.rp {
		if !cf.AcquireOnRelease {
			return
		}
		src = persist.EpochID{Thread: cf.Writer, TS: cf.WriterTS}
		if m.EpochCommitted(src) {
			return
		}
	} else {
		if !cf.Remote {
			return
		}
		w := m.cores[cf.Writer]
		src = persist.EpochID{Thread: cf.Writer, TS: w.et.CurrentTS()}
	}
	m.hc.interTEpochConflict.Inc()

	// Both sides split unconditionally (see ASAP.addDependency): the
	// dependency source must be a closed epoch or mutual blocking can
	// deadlock.
	w := m.cores[src.Thread]
	if w.et.CurrentTS() == src.TS {
		w.et.Advance()
		m.tryCommit(w, src.TS)
	}
	c := m.cores[core]
	prev := c.et.CurrentTS()
	c.et.Advance()
	m.tryCommit(c, prev)
	cur := c.et.Current()
	if !m.EpochCommitted(src) {
		//asaplint:ignore alloccheck legacy model bookkeeping growth, bounded by workload footprint; outside the zero-alloc gate
		cur.Deps = append(cur.Deps, src)
		m.env.Ledger.DepCreated(src, persist.EpochID{Thread: core, TS: cur.TS})
		m.schedulePoll(c)
	}
}

// StartDrain gives end-of-trace dfence semantics.
func (m *HOPS) StartDrain(core int, done func()) {
	m.Dfence(core, done)
}

// PBOccupancy and PBBlocked feed the sampler; Figure 3 plots the blocked
// percentage for HOPS.
func (m *HOPS) PBOccupancy(core int) int { return m.cores[core].pb.Len() }

// PBBlocked: the buffer holds writes but conservative flushing forbids
// issuing any — the oldest epoch has an unresolved dependency, or all its
// writes are in flight while younger epochs wait.
func (m *HOPS) PBBlocked(core int) bool {
	c := m.cores[core]
	if c.pb.Empty() {
		return false
	}
	return m.nextFlushable(c) == nil && c.pb.Inflight() == 0
}

// nextFlushable returns the next waiting entry of the oldest uncommitted
// epoch, provided that epoch's dependencies are resolved. Conservative
// flushing: nothing younger may flush.
func (m *HOPS) nextFlushable(c *hopsCore) *persist.PBEntry {
	oldest := c.et.OldestTS()
	ent, ok := c.et.Get(oldest)
	if ok && !ent.DepsResolved() {
		m.schedulePoll(c)
		return nil
	}
	//asaplint:ignore alloccheck closure-form event scheduling; typed-event conversion of this legacy model is tracked roadmap debt
	return c.pb.NextWaiting(func(e *persist.PBEntry) bool { return e.TS == oldest })
}

func (m *HOPS) kickFlusher(c *hopsCore) {
	if c.flushScheduled {
		return
	}
	c.flushScheduled = true
	//asaplint:ignore alloccheck closure-form event scheduling; typed-event conversion of this legacy model is tracked roadmap debt
	m.env.Eng.After(1, func() {
		c.flushScheduled = false
		m.flushOne(c)
	})
}

func (m *HOPS) flushOne(c *hopsCore) {
	if c.pb.Inflight() >= m.env.Cfg.PBMaxInflight {
		return
	}
	e := m.nextFlushable(c)
	if e == nil {
		return
	}
	c.pb.MarkInflight(e, false)
	pkt := persist.FlushPacket{
		Line:  e.Line,
		Token: e.Token,
		Epoch: persist.EpochID{Thread: c.id, TS: e.TS},
	}
	id := e.ID
	//asaplint:ignore alloccheck closure-form flush reply; typed-event conversion of this legacy model is tracked roadmap debt
	m.env.Link.Flush(m.env.IL.Home(e.Line), pkt, func(res persist.FlushResult) {
		if res != persist.FlushAck {
			panic("hops: controller NACKed a safe flush")
		}
		m.onAck(c, id)
	})
	if c.pb.Inflight() < m.env.Cfg.PBMaxInflight {
		//asaplint:ignore alloccheck closure-form event scheduling; typed-event conversion of this legacy model is tracked roadmap debt
		m.env.Eng.After(flushIssuePace, func() { m.flushOne(c) })
	}
}

func (m *HOPS) onAck(c *hopsCore, id uint64) {
	e, ok := c.pb.Ack(id)
	if !ok {
		panic("hops: ACK for unknown persist buffer entry")
	}
	if ent, ok := c.et.Get(e.TS); ok {
		ent.Unacked--
		m.tryCommit(c, e.TS)
	}
	if len(c.storeWaiters) > 0 {
		w := c.storeWaiters[0]
		c.storeWaiters = c.storeWaiters[1:]
		w()
	}
	m.kickFlusher(c)
}

// tryCommit: a HOPS epoch commits when closed, fully ACKed, dependencies
// resolved and the previous epoch committed; it then publishes to the
// global TS register.
func (m *HOPS) tryCommit(c *hopsCore, ts uint64) {
	ent, ok := c.et.Get(ts)
	if !ok || ent.Committed {
		return
	}
	if !ent.Closed || ent.Unacked != 0 || !ent.DepsResolved() || !c.et.PrevCommitted(ts) {
		return
	}
	ent.Committed = true
	m.globalTS[c.id] = ts
	m.hc.epochsCommitted.Inc()
	m.env.Ledger.EpochCommitted(persist.EpochID{Thread: c.id, TS: ts})
	c.et.Retire(ts)
	m.tryCommit(c, ts+1)
	if c.fenceWaiter != nil && !c.et.Full() {
		w := c.fenceWaiter
		c.fenceWaiter = nil
		//asaplint:ignore alloccheck resume/done callback invocation; the callback's creation site carries the alloc proof
		w()
	}
	if c.dfenceWaiter != nil && c.et.AllCommitted() {
		w := c.dfenceWaiter
		c.dfenceWaiter = nil
		m.hc.dfenceStalled.Add(uint64(m.env.Eng.Now() - c.dfenceStart))
		//asaplint:ignore alloccheck resume/done callback invocation; the callback's creation site carries the alloc proof
		w()
	}
	m.kickFlusher(c)
}

// schedulePoll arranges the next global-TS poll for core c. Each poll
// happens HOPSPollInterval cycles after the previous one and the register
// access itself costs HOPSPollCost before the result is visible.
func (m *HOPS) schedulePoll(c *hopsCore) {
	if c.pollScheduled {
		return
	}
	c.pollScheduled = true
	//asaplint:ignore alloccheck closure-form event scheduling; typed-event conversion of this legacy model is tracked roadmap debt
	m.env.Eng.After(m.env.Cfg.HOPSPollInterval, func() {
		//asaplint:ignore alloccheck closure-form event scheduling; typed-event conversion of this legacy model is tracked roadmap debt
		m.env.Eng.After(m.env.Cfg.HOPSPollCost, func() {
			c.pollScheduled = false
			m.hc.hopsPolls.Inc()
			m.pollOnce(c)
		})
	})
}

// pollOnce checks every unresolved dependency of the oldest epoch against
// the global TS register and re-arms the poll if any remain.
func (m *HOPS) pollOnce(c *hopsCore) {
	progress := false
	remaining := false
	//asaplint:ignore alloccheck closure-form event scheduling; typed-event conversion of this legacy model is tracked roadmap debt
	c.et.Epochs(func(ent *persist.ETEntry) {
		for ent.Resolved < len(ent.Deps) {
			src := ent.Deps[ent.Resolved]
			if m.globalTS[src.Thread] >= src.TS {
				ent.Resolved++
				progress = true
			} else {
				remaining = true
				return
			}
		}
	})
	if progress {
		//asaplint:ignore alloccheck closure-form event scheduling; typed-event conversion of this legacy model is tracked roadmap debt
		c.et.Epochs(func(ent *persist.ETEntry) { m.tryCommit(c, ent.TS) })
		m.kickFlusher(c)
	}
	if remaining {
		m.schedulePoll(c)
	}
}

var _ Model = (*HOPS)(nil)

// PBHasLine reports whether the core's persist buffer holds the line.
func (m *HOPS) PBHasLine(core int, line mem.Line) bool {
	return m.cores[core].pb.HasLine(line)
}
