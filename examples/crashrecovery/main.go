// crashrecovery: a guided walk through ASAP's recovery machinery at the
// lowest level — hand-drive a memory controller through the write-collision
// scenario of Figure 5 (three threads racing on one address), watch the
// undo and delay records evolve per Table I, then crash and observe the
// rollback.
package main

import (
	"fmt"

	"asap/internal/config"
	"asap/internal/mem"
	"asap/internal/persist"
	"asap/internal/sim"
	"asap/internal/stats"
)

func main() {
	eng := sim.NewEngine()
	cfg := config.Default()
	mc := persist.NewMC(0, eng, cfg, true /* speculative: recovery table */, stats.New())

	line := mem.LineOf(0x1000)
	show := func(step string) {
		var undoVal string
		if u, ok := mc.RT.Undo(line); ok {
			undoVal = fmt.Sprintf("undo(safe=%d, creator=T%d/E%d)", u.Safe, u.Creator.Thread, u.Creator.TS)
		} else {
			undoVal = "no undo record"
		}
		fmt.Printf("%-46s memory=%d  %s  rtOcc=%d\n",
			step, mc.NVM.Peek(line), undoVal, mc.RT.Occupancy())
	}

	fmt.Println("Figure 5 write collision: initially A=0; T1 writes 1, T2 writes 2, T3 writes 3.")
	fmt.Println("Early flushes arrive out of order: A=3 first, then A=2.")
	fmt.Println()

	flush := func(tok mem.Token, thread int, ts uint64, early bool) {
		mc.Receive(persist.FlushPacket{
			Line: line, Token: tok,
			Epoch: persist.EpochID{Thread: thread, TS: ts},
			Early: early,
		}, func(r persist.FlushResult) {
			fmt.Printf("  -> flush A=%d from T%d: %s\n", tok, thread, r)
		})
		eng.Run(0)
	}
	commit := func(thread int, ts uint64) {
		mc.Commit(persist.EpochID{Thread: thread, TS: ts}, func() {
			fmt.Printf("  -> commit T%d/E%d acknowledged\n", thread, ts)
		})
		eng.Run(0)
	}

	// T1's A=1 persisted safely first (its epoch was already safe).
	flush(1, 1, 1, false)
	show("safe flush A=1 (T1):")

	// T3's A=3 arrives early: undo record created with the old value (1),
	// memory speculatively updated to 3.
	flush(3, 3, 1, true)
	show("early flush A=3 (T3): speculative update")

	// T2's A=2 arrives early after T3's: an undo record already exists,
	// so a delay record holds it (Table I, bottom-right).
	flush(2, 2, 1, true)
	show("early flush A=2 (T2): delayed")

	fmt.Println("\n--- scenario A: T2 then T3 commit (dependency order) ---")
	// T2 commits first (T3's write depends on T2's): the delay record's
	// value becomes the recorded safe value.
	commit(2, 1)
	show("after T2 commit (delay -> undo safe value):")
	commit(3, 1)
	show("after T3 commit (undo deleted):")
	fmt.Printf("final memory value: %d (T3's write, correct)\n", mc.NVM.Peek(line))

	fmt.Println("\n--- scenario B: crash before T3 commits ---")
	// Rebuild the same state on a fresh controller.
	eng2 := sim.NewEngine()
	mc2 := persist.NewMC(0, eng2, cfg, true, stats.New())
	replay := func(tok mem.Token, thread int, ts uint64, early bool) {
		mc2.Receive(persist.FlushPacket{Line: line, Token: tok,
			Epoch: persist.EpochID{Thread: thread, TS: ts}, Early: early},
			func(persist.FlushResult) {})
		eng2.Run(0)
	}
	replay(1, 1, 1, false)
	replay(3, 3, 1, true)
	replay(2, 2, 1, true)
	mc2.Commit(persist.EpochID{Thread: 2, TS: 1}, func() {})
	eng2.Run(0)
	fmt.Printf("pre-crash: memory=%d (speculative), undo safe=2 (T2 committed)\n", mc2.NVM.Peek(line))
	mc2.CrashFlush()
	fmt.Printf("post-crash: memory=%d — rolled back to the last committed write (T2's)\n", mc2.NVM.Peek(line))
	fmt.Println("\nThe ADR drain wrote every undo record's safe value back to NVM (§V-E);")
	fmt.Println("delay records were discarded: their epochs never committed.")
}
