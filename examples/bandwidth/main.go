// bandwidth: the Figure 13 microbenchmark as a standalone program — 256 B
// ofence-ordered writes alternating across the two memory controllers.
// Conservative flushing (HOPS) serializes on each epoch's ACK round trip
// and leaves one controller idle; ASAP's eager flushing overlaps both.
package main

import (
	"fmt"
	"log"

	"asap/internal/config"
	"asap/internal/machine"
	"asap/internal/model"
	"asap/internal/workload"
)

func main() {
	const blocks = 2000
	p := workload.Params{Threads: 1, OpsPerThread: blocks, ValueSize: 64, KeyRange: 1, Seed: 1}
	tr, err := workload.Generate("bandwidth", p)
	if err != nil {
		log.Fatal(err)
	}
	bytes := float64(workload.BandwidthBytes(p))

	fmt.Printf("%d x 256B ofence-ordered writes alternating across 2 MCs (1 thread)\n\n", blocks)
	fmt.Printf("%-10s %-12s %-10s\n", "model", "cycles", "GB/s")
	var hops, asap float64
	for _, name := range []string{model.NameBaseline, model.NameHOPSRP, model.NameASAPRP} {
		m, err := machine.New(config.Default(), name, tr)
		if err != nil {
			log.Fatal(err)
		}
		res := m.Run(0)
		gbs := bytes / (float64(res.Cycles) / 2e9) / 1e9
		fmt.Printf("%-10s %-12d %.2f\n", name, res.Cycles, gbs)
		switch name {
		case model.NameHOPSRP:
			hops = gbs
		case model.NameASAPRP:
			asap = gbs
		}
	}
	fmt.Printf("\nASAP/HOPS bandwidth ratio: %.2fx (paper Figure 13: ~2x)\n", asap/hops)
}
