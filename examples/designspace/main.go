// designspace: run one workload across the full design space — the six
// models the paper evaluates plus the related-work and extension designs
// (LB++, DPO, LRP, Vorpal, PMEM-Spec, StrandWeaver) — and print a ranked
// comparison with the stats that explain each design's behaviour.
package main

import (
	"fmt"
	"log"
	"sort"

	"asap/internal/config"
	"asap/internal/machine"
	"asap/internal/model"
	"asap/internal/workload"
)

func main() {
	params := workload.Params{
		Threads:      4,
		OpsPerThread: 250,
		KeyRange:     2048,
		ValueSize:    64,
		Seed:         7,
	}
	tr, err := workload.Generate("atlas_queue", params)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("workload %q: %d threads, %d trace ops — the Atlas FIFO queue,\n",
		tr.Name, tr.NumThreads(), tr.TotalOps())
	fmt.Println("a lock-serialized structure with heavy cross-thread dependencies.")
	fmt.Println()

	type row struct {
		name   string
		cycles uint64
		note   string
	}
	var rows []row
	var baseline float64
	for _, name := range model.ExtendedNames() {
		m, err := machine.New(config.Default(), name, tr)
		if err != nil {
			log.Fatal(err)
		}
		res := m.Run(0)
		if name == model.NameBaseline {
			baseline = float64(res.Cycles)
		}
		note := ""
		switch name {
		case model.NameHOPSEP, model.NameHOPSRP:
			note = fmt.Sprintf("polls=%d", res.Stats.Get("hopsPolls"))
		case model.NameASAPEP, model.NameASAPRP:
			note = fmt.Sprintf("early=%d undo=%d nacks=%d",
				res.Stats.Get("totSpecWrites"), res.Stats.Get("totalUndo"), res.Stats.Get("mcNacks"))
		case model.NameVorpal:
			note = fmt.Sprintf("parked=%d broadcasts=%d",
				res.Stats.Get("vorpalParked"), res.Stats.Get("vorpalBroadcasts"))
		case model.NamePMEMSpec:
			note = fmt.Sprintf("misspeculations=%d", res.Stats.Get("specMisspeculations"))
		case model.NameDPO:
			note = fmt.Sprintf("broadcasts=%d", res.Stats.Get("dpoBroadcasts"))
		case model.NameLRP:
			note = fmt.Sprintf("forwardStalls=%d", res.Stats.Get("lrpForwardStalls"))
		case model.NameStrandWeaver:
			note = fmt.Sprintf("strands=%d", res.Stats.Get("swStrands"))
		}
		rows = append(rows, row{name, res.Cycles, note})
	}

	sort.Slice(rows, func(i, j int) bool { return rows[i].cycles < rows[j].cycles })
	fmt.Printf("%-12s %12s %9s   %s\n", "model", "cycles", "speedup", "design-specific stats")
	for _, r := range rows {
		fmt.Printf("%-12s %12d %8.2fx   %s\n", r.name, r.cycles, baseline/float64(r.cycles), r.note)
	}
	fmt.Println("\nExpected shape (paper Table IV): eADR fastest (battery), ASAP close behind;")
	fmt.Println("conservative designs (LB++/DPO/LRP/HOPS) in the middle; Vorpal broadcast-bound;")
	fmt.Println("PMEM-Spec last on a 2-controller machine (software mis-speculation recovery).")
}
