// kvstore: use the persistent data-structure library directly — build a
// CCEH hash table on a simulated PM heap, run a multi-threaded workload
// against it, then replay the recorded trace under ASAP and verify crash
// recovery at 25 random power-failure points.
package main

import (
	"fmt"
	"log"

	"asap/internal/config"
	"asap/internal/crash"
	"asap/internal/machine"
	"asap/internal/model"
	"asap/internal/pmds"
	"asap/internal/rng"
)

func main() {
	// 1. A real CCEH table over a simulated PM heap. Four logical
	//    threads interleave inserts and lookups; every store, fence and
	//    lock is recorded into a trace.
	heap := pmds.NewHeap(32<<20, 4)
	heap.CaptureImages()
	table := pmds.NewCCEH(heap, 4, 64)

	r := rng.New(7)
	inserted := make(map[uint64]uint64)
	for i := 0; i < 2000; i++ {
		heap.SetThread(i % 4)
		key := 1 + r.Uint64n(1024)
		val := r.Uint64()
		if table.Insert(key, val) {
			inserted[key] = val
		}
	}

	// Functional check against the oracle.
	heap.SetThread(0)
	for k, want := range inserted {
		got, ok := table.Get(k)
		if !ok || got != want {
			log.Fatalf("table.Get(%d) = (%d,%v), want (%d,true)", k, got, ok, want)
		}
	}
	fmt.Printf("CCEH: %d distinct keys verified against the oracle\n", len(inserted))

	// 2. Replay the recorded trace on the timing machine under ASAP_RP.
	tr := heap.Trace("kvstore")
	m, err := machine.New(config.Default(), model.NameASAPRP, tr)
	if err != nil {
		log.Fatal(err)
	}
	res := m.Run(0)
	fmt.Printf("ASAP_RP replay: %d cycles, %d PM writes, %d early flushes, %d undo records\n",
		res.Cycles, res.PMWrites, res.Stats.Get("totSpecWrites"), res.Stats.Get("totalUndo"))

	// 3. Crash the machine at 25 random points and verify Theorem 2: the
	//    recovered NVM image is always consistent.
	campaign, err := crash.Campaign(config.Default(), model.NameASAPRP, tr, 25, 99)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("crash campaign: %d injections, %d inconsistent recoveries\n",
		campaign.Crashes, len(campaign.Failures))
	if len(campaign.Failures) > 0 {
		log.Fatalf("recovery failed: %v", campaign.Failures[0].Problems)
	}
	fmt.Println("all recoveries consistent (committed epochs durable, ancestry closed)")

	// 4. Restart demonstration (§V-E): crash a single-threaded run midway,
	//    rebuild the NVM byte image from the surviving tokens, and reopen
	//    the table on it — no recovery pass needed.
	heap1 := pmds.NewHeap(8<<20, 1)
	heap1.CaptureImages()
	t1 := pmds.NewCCEH(heap1, 3, 8)
	inserted1 := 0
	r2 := rng.New(5)
	for i := 0; i < 800; i++ {
		if t1.Insert(1+r2.Uint64n(700), r2.Uint64()) {
			inserted1++
		}
	}
	m2, err := machine.New(config.Default(), model.NameASAPRP, heap1.Trace("restart"))
	if err != nil {
		log.Fatal(err)
	}
	m2.ScheduleCrash(80_000)
	m2.Run(0)
	img, err := crash.RebuildImage(m2, heap1, 8<<20)
	if err != nil {
		log.Fatal(err)
	}
	reopened := pmds.ReopenCCEH(pmds.ReopenHeap(img, 1), t1.RootAddr(), 8)
	recovered := 0
	for k := uint64(1); k <= 700; k++ {
		if _, ok := reopened.Get(k); ok {
			recovered++
		}
	}
	fmt.Printf("restart: crashed at cycle 80k, reopened with no recovery pass, %d keys readable\n", recovered)
}
