// Quickstart: build a machine, run one workload under ASAP, and compare it
// against the Intel baseline — the minimal end-to-end use of the library.
package main

import (
	"fmt"
	"log"

	"asap/internal/config"
	"asap/internal/machine"
	"asap/internal/model"
	"asap/internal/workload"
)

func main() {
	// 1. Generate a workload trace: CCEH extendible hashing, 4 threads,
	//    update-intensive, 64-byte values (Table III configuration).
	params := workload.Params{
		Threads:      4,
		OpsPerThread: 300,
		KeyRange:     2048,
		ValueSize:    64,
		Seed:         42,
	}
	tr, err := workload.Generate("cceh", params)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("generated %q: %d threads, %d trace ops\n\n", tr.Name, tr.NumThreads(), tr.TotalOps())

	// 2. Run it under each persistence model on the Table II machine
	//    (4 cores @2 GHz, 2 memory controllers, Optane-like NVM).
	cfg := config.Default()
	baselineCycles := uint64(0)
	for _, name := range model.AllNames() {
		m, err := machine.New(cfg, name, tr)
		if err != nil {
			log.Fatal(err)
		}
		res := m.Run(0)
		if name == model.NameBaseline {
			baselineCycles = res.Cycles
		}
		fmt.Printf("%-10s %10d cycles  speedup %.2fx  pmWrites %-6d crossdeps %d\n",
			name, res.Cycles, float64(baselineCycles)/float64(res.Cycles),
			res.PMWrites, res.Stats.Get("interTEpochConflict"))
	}

	fmt.Println("\nASAP flushes eagerly and speculates in the memory controller;")
	fmt.Println("expect it between HOPS and the eADR ideal.")
}
