package asap

// The golden-trace gate: the Chrome trace of one small queue run is
// pinned byte-for-byte under testdata/golden/trace_small.json, and its
// shape is validated structurally (valid JSON, per-track monotonic
// timestamps, balanced begin/end pairs). Tracing changes are expected to
// trip the byte comparison — regenerate with `make golden` (which sets
// UPDATE_GOLDEN for this test) and review the diff.

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"asap/internal/config"
	"asap/internal/machine"
	"asap/internal/model"
	"asap/internal/obs"
	"asap/internal/workload"
)

// goldenTraceJSON reproduces
//
//	asapsim -workload atlas_queue -model asap_rp -threads 2 -ops 12 -trace ...
//
// and returns the serialized Chrome trace.
func goldenTraceJSON(t *testing.T) []byte {
	t.Helper()
	tr, err := workload.Generate("atlas_queue", workload.Params{
		Threads: 2, OpsPerThread: 12, KeyRange: 4096, ValueSize: 64, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	m, err := machine.New(config.Default(), model.NameASAPRP, tr)
	if err != nil {
		t.Fatal(err)
	}
	col := obs.NewCollector(m.Eng.Now)
	m.AttachTracer(col)
	if res := m.Run(0); res.Cycles == 0 {
		t.Fatal("golden trace run simulated zero cycles")
	}
	var buf bytes.Buffer
	if err := col.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestGoldenTrace pins the trace bytes. UPDATE_GOLDEN=1 regenerates the
// committed file instead of comparing.
func TestGoldenTrace(t *testing.T) {
	got := goldenTraceJSON(t)
	path := filepath.Join("testdata", "golden", "trace_small.json")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("regenerated %s (%d bytes)", path, len(got))
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (regenerate with `make golden`)", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("trace differs from %s — if the tracing change is intended, regenerate with `make golden` and review the diff", path)
	}
}

// chromeEvent is the subset of the trace-event schema the shape test
// inspects.
type chromeEvent struct {
	Name  string         `json:"name"`
	Phase string         `json:"ph"`
	TS    float64        `json:"ts"`
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	Scope string         `json:"s"`
	Args  map[string]any `json:"args"`
}

// TestGoldenTraceShape validates the trace structurally, independent of
// exact bytes: it must be valid JSON in the Chrome trace-event format,
// every track's timestamps must be monotonically non-decreasing, every
// End must close an open Begin, and no span may remain open at the end.
func TestGoldenTraceShape(t *testing.T) {
	raw := goldenTraceJSON(t)
	var tf struct {
		DisplayTimeUnit string        `json:"displayTimeUnit"`
		TraceEvents     []chromeEvent `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &tf); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if tf.DisplayTimeUnit != "ns" {
		t.Errorf("displayTimeUnit = %q, want ns", tf.DisplayTimeUnit)
	}
	if len(tf.TraceEvents) == 0 {
		t.Fatal("no trace events")
	}

	lastTS := map[int]float64{} // per-track monotonicity
	depth := map[int]int{}      // per-track open-span depth
	names := map[string]bool{}  // thread_name metadata seen
	counters := map[string]bool{}
	for i, e := range tf.TraceEvents {
		switch e.Phase {
		case "M":
			if e.Name == "thread_name" {
				n, _ := e.Args["name"].(string)
				names[n] = true
			}
			continue
		case "B":
			depth[e.TID]++
		case "E":
			depth[e.TID]--
			if depth[e.TID] < 0 {
				t.Fatalf("event %d: End on track %d with no open Begin", i, e.TID)
			}
		case "i":
			if e.Scope != "t" {
				t.Errorf("event %d: instant scope = %q, want t", i, e.Scope)
			}
		case "C":
			if _, ok := e.Args["value"]; !ok {
				t.Errorf("event %d: counter %q without value arg", i, e.Name)
			}
			counters[e.Name] = true
		default:
			t.Errorf("event %d: unknown phase %q", i, e.Phase)
		}
		if e.TS < lastTS[e.TID] {
			t.Fatalf("event %d: track %d timestamp %v before %v — not monotonic", i, e.TID, e.TS, lastTS[e.TID])
		}
		lastTS[e.TID] = e.TS
	}
	for tid, d := range depth {
		if d != 0 {
			t.Errorf("track %d: %d spans left open", tid, d)
		}
	}
	// One track per core, per persist buffer, and per MC, plus the engine.
	for _, want := range []string{"core0", "core1", "core0 pb", "core1 pb", "mc0", "mc1", "engine"} {
		if !names[want] {
			t.Errorf("track %q missing (have %v)", want, names)
		}
	}
	for _, want := range []string{"mc0/wpq", "core0 pb/pb", "core0 pb/et", "engine/events"} {
		if !counters[want] {
			t.Errorf("counter series %q missing", want)
		}
	}
}
