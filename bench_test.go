package asap

// Benchmarks regenerating the paper's evaluation: one benchmark per figure
// and table of §VII plus the ablation studies from DESIGN.md. Each reported
// iteration regenerates the full experiment at benchmark scale; run
//
//	go test -bench=. -benchmem
//
// for the whole suite, or e.g. -bench=BenchmarkFig8 for one figure. The
// publication-scale numbers recorded in EXPERIMENTS.md come from
// cmd/asapfig at its default scale.

import (
	"runtime"
	"testing"

	"asap/internal/config"
	"asap/internal/harness"
	"asap/internal/machine"
	"asap/internal/model"
	"asap/internal/obs"
	"asap/internal/workload"
)

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		// Parallel: 1 pins the per-experiment benchmarks to the strictly
		// serial engine so they measure simulator throughput, not pool
		// scheduling; the BenchmarkAll*/Fig8Parallel benchmarks below
		// measure the parallel engine.
		h := harness.New(harness.Options{Ops: 80, Seed: 1, Parallel: 1})
		if _, err := h.Experiment(id); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig2 regenerates Figure 2 (epochs and cross-thread dependencies
// per millisecond across the Table III workloads).
func BenchmarkFig2(b *testing.B) { benchExperiment(b, "fig2") }

// BenchmarkFig3 regenerates Figure 3 (persist buffer blocked cycles, HOPS).
func BenchmarkFig3(b *testing.B) { benchExperiment(b, "fig3") }

// BenchmarkFig8 regenerates Figure 8 (speedup over the Intel baseline for
// all six models on all workloads).
func BenchmarkFig8(b *testing.B) { benchExperiment(b, "fig8") }

// BenchmarkFig9 regenerates Figure 9 (PM write endurance, ASAP vs HOPS).
func BenchmarkFig9(b *testing.B) { benchExperiment(b, "fig9") }

// BenchmarkFig10 regenerates Figure 10 (1/2/4/8-thread scalability).
func BenchmarkFig10(b *testing.B) { benchExperiment(b, "fig10") }

// BenchmarkFig11 regenerates Figure 11 (persist buffer occupancy).
func BenchmarkFig11(b *testing.B) { benchExperiment(b, "fig11") }

// BenchmarkFig12 regenerates Figure 12 (recovery table max occupancy).
func BenchmarkFig12(b *testing.B) { benchExperiment(b, "fig12") }

// BenchmarkFig13 regenerates Figure 13 (bandwidth microbenchmark).
func BenchmarkFig13(b *testing.B) { benchExperiment(b, "fig13") }

// BenchmarkTab4 regenerates the quantitative Table IV (related work:
// HOPS, DPO, PMEM-Spec, ASAP, eADR; PMEM-Spec also at 1 MC).
func BenchmarkTab4(b *testing.B) { benchExperiment(b, "tab4") }

// BenchmarkTab5 regenerates Table V (hardware cost model).
func BenchmarkTab5(b *testing.B) { benchExperiment(b, "tab5") }

// Ablations (DESIGN.md extension studies).

// BenchmarkAblationRTSize sweeps the recovery table size.
func BenchmarkAblationRTSize(b *testing.B) { benchExperiment(b, "abl_rt") }

// BenchmarkAblationPBSize sweeps the persist buffer size.
func BenchmarkAblationPBSize(b *testing.B) { benchExperiment(b, "abl_pb") }

// BenchmarkAblationEager disables eager flushing in ASAP.
func BenchmarkAblationEager(b *testing.B) { benchExperiment(b, "abl_eager") }

// BenchmarkAblationXPBuffer sweeps the XPBuffer (undo-read cost).
func BenchmarkAblationXPBuffer(b *testing.B) { benchExperiment(b, "abl_xpbuf") }

// BenchmarkAblationInterleave compares 256 B vs 4 KB MC interleaving.
func BenchmarkAblationInterleave(b *testing.B) { benchExperiment(b, "abl_interleave") }

// BenchmarkSensitivityNVMBandwidth sweeps media write bandwidth (the
// paper's claim that ASAP's advantage grows with NVM bandwidth).
func BenchmarkSensitivityNVMBandwidth(b *testing.B) { benchExperiment(b, "abl_nvmbw") }

// BenchmarkStrandPersistency runs the strand-persistency extension
// (HOPS vs StrandWeaver vs ASAP on strand-annotated traces).
func BenchmarkStrandPersistency(b *testing.B) { benchExperiment(b, "abl_strands") }

// Parallel-engine benchmarks: the full campaign (`asapfig all`) with a
// serial engine vs the default GOMAXPROCS worker pool. The ratio of the
// two is the wall-clock speedup the -parallel flag buys on this machine;
// CI records both (the golden-table gate separately proves the outputs
// are byte-identical).
func benchAll(b *testing.B, parallel int) {
	b.Helper()
	ids := harness.Experiments()
	for i := 0; i < b.N; i++ {
		h := harness.New(harness.Options{Ops: 80, Seed: 1, Parallel: parallel})
		if _, err := h.Tables(ids); err != nil {
			b.Fatal(err)
		}
	}
}

// requireParallelHW skips pool- and shard-parallelism benchmarks on a
// single-CPU box. With GOMAXPROCS=1 the worker pool degenerates to the
// serial engine and a "parallel" benchmark records serial numbers — plus
// goroutine-scheduling overhead — under a parallel name. That is exactly
// the old baseline's Fig8Parallel anomaly (362.6 ms "parallel" vs 347.5 ms
// serial): not a performance bug, a benchmark measuring something other
// than its name claims. Skipping keeps such numbers out of the baseline
// entirely; benchdiff ignores benchmarks present on only one side.
func requireParallelHW(b *testing.B) {
	b.Helper()
	if n := runtime.GOMAXPROCS(0); n < 2 {
		b.Skipf("needs >1 CPU to measure parallelism (GOMAXPROCS=%d)", n)
	}
}

// BenchmarkAllSerial runs every experiment with one worker (the engine's
// strictly serial mode).
func BenchmarkAllSerial(b *testing.B) { benchAll(b, 1) }

// BenchmarkAllParallel runs every experiment with a GOMAXPROCS pool.
func BenchmarkAllParallel(b *testing.B) {
	requireParallelHW(b)
	benchAll(b, 0)
}

// BenchmarkFig8Parallel regenerates the headline figure alone on a
// GOMAXPROCS pool (its ~84 simulations fan out via the prefetch plan).
func BenchmarkFig8Parallel(b *testing.B) {
	requireParallelHW(b)
	for i := 0; i < b.N; i++ {
		h := harness.New(harness.Options{Ops: 80, Seed: 1, Parallel: 0})
		if _, err := h.Experiment("fig8"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig8Shards8 regenerates the headline figure with every
// simulation on a sharded engine (-shards=8; machine.EffectiveShards
// clamps to the CPU|MCs two-domain map) and the pool pinned serial, so the
// ratio against BenchmarkFig8 isolates intra-run sharding. It needs real
// cores for the domains to overlap — on one CPU the shard workers just
// take turns at the barrier.
func BenchmarkFig8Shards8(b *testing.B) {
	requireParallelHW(b)
	for i := 0; i < b.N; i++ {
		h := harness.New(harness.Options{Ops: 80, Seed: 1, Parallel: 1, Shards: 8})
		if _, err := h.Experiment("fig8"); err != nil {
			b.Fatal(err)
		}
	}
}

// Per-model microbenchmarks: simulator throughput for a single fixed
// workload/model pair (simulated cycles are deterministic; this measures
// the simulator itself).
func benchRun(b *testing.B, wl, mdl string) {
	b.Helper()
	p := workload.Default()
	p.OpsPerThread = 120
	tr, err := workload.Generate(wl, p)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m, err := machine.New(config.Default(), mdl, tr)
		if err != nil {
			b.Fatal(err)
		}
		if res := m.Run(0); res.Cycles == 0 {
			b.Fatal("zero cycles")
		}
	}
}

func BenchmarkRunBaselineCCEH(b *testing.B) { benchRun(b, "cceh", model.NameBaseline) }
func BenchmarkRunHOPSCCEH(b *testing.B)     { benchRun(b, "cceh", model.NameHOPSRP) }
func BenchmarkRunASAPCCEH(b *testing.B)     { benchRun(b, "cceh", model.NameASAPRP) }
func BenchmarkRunASAPPART(b *testing.B)     { benchRun(b, "p_art", model.NameASAPRP) }
func BenchmarkRunEADRCCEH(b *testing.B)     { benchRun(b, "cceh", model.NameEADR) }

// BenchmarkRunASAPTraced is BenchmarkRunASAPCCEH with full tracing on —
// collector and timeline attached, events recorded but not serialized.
// The ratio against BenchmarkRunASAPCCEH is the tracing-on overhead; CI
// gates it through benchdiff like every other benchmark.
func BenchmarkRunASAPTraced(b *testing.B) {
	p := workload.Default()
	p.OpsPerThread = 120
	tr, err := workload.Generate("cceh", p)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m, err := machine.New(config.Default(), model.NameASAPRP, tr)
		if err != nil {
			b.Fatal(err)
		}
		col := obs.NewCollector(m.Eng.Now)
		m.AttachTracer(col)
		m.EnableTimeline(0)
		if res := m.Run(0); res.Cycles == 0 {
			b.Fatal("zero cycles")
		}
		if col.Len() == 0 {
			b.Fatal("tracing recorded no events")
		}
	}
}
