GO ?= go

.PHONY: all build test race vet fmt lint bench bench-baseline golden golden-check profile serve smoke ci

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test -shuffle=on -count=1 ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# fmt mirrors the CI gofmt gate: fail, naming the files, if anything is
# unformatted.
fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "files need gofmt:" >&2; echo "$$out" >&2; exit 1; fi

# lint runs the repo's own static-analysis suite (cmd/asaplint): the
# per-package analyzers (donecheck, detcheck, unitcheck, ledgercheck,
# obscheck, schedcheck, statcheck) plus the module-wide call-graph pair —
# alloccheck (//asap:hot functions are transitively allocation-free) and
# domaincheck (event callbacks mutate only their own component). Use
# `go run ./cmd/asaplint -json ./...` for machine-readable findings.
lint:
	$(GO) run ./cmd/asaplint ./...

bench:
	$(GO) test -bench=. -benchtime=1x -run=^$$ ./...

# bench-baseline regenerates the committed benchmark baseline the CI
# bench job gates against (25% time regression, 10% allocs/op and B/op
# regression; zero-alloc benchmarks fail on any allocation). Run it on
# the same class of machine CI uses, or refresh from CI's BENCH_ci.json
# artifact.
bench-baseline:
	$(GO) test -bench 'Fig8|Tab4|RunASAP' -benchtime 1x -count 3 -benchmem -run '^$$' . > /tmp/bench_baseline.txt
	$(GO) test -bench 'EventThroughput|ShardBarrier' -benchtime 1000000x -count 3 -benchmem -run '^$$' ./internal/sim >> /tmp/bench_baseline.txt
	$(GO) test -bench 'HierarchyAccess|DirectoryAccess|SetAssocLookup' -benchtime 1000000x -count 8 -benchmem -run '^$$' ./internal/cache >> /tmp/bench_baseline.txt
	$(GO) test -bench 'PBFlushCycle|MCFlushCommit' -benchtime 200000x -count 3 -benchmem -run '^$$' ./internal/persist >> /tmp/bench_baseline.txt
	$(GO) test -bench 'MachineOps' -benchtime 10000x -count 3 -benchmem -run '^$$' ./internal/machine >> /tmp/bench_baseline.txt
	$(GO) test -bench 'CrashCampaignForked' -benchtime 1x -count 3 -benchmem -run '^$$' ./internal/crash >> /tmp/bench_baseline.txt
	$(GO) test -bench 'CheckpointRoundtrip' -benchtime 20x -count 3 -benchmem -run '^$$' ./internal/checkpoint >> /tmp/bench_baseline.txt
	$(GO) run ./cmd/benchdiff -tojson /tmp/bench_baseline.txt > BENCH_baseline.json
	@cat BENCH_baseline.json

# golden regenerates the checked-in golden tables the CI golden job (and
# golden_test.go) diff against, plus the golden Chrome trace
# (testdata/golden/trace_small.json, pinned by golden_trace_test.go).
# Review the diff: a golden change means published numbers moved.
golden:
	$(GO) run ./cmd/asapfig -ops 80 -csv -outdir testdata/golden all
	UPDATE_GOLDEN=1 $(GO) test -run 'TestGoldenTrace$$' -count=1 .

# golden-check reproduces the CI golden gate locally: serial and
# 8-worker-parallel runs must both match the committed tables exactly.
# The golden trace JSON and the golden checkpoint image are excluded
# (asapfig does not emit them; their own tests pin them byte-for-byte).
golden-check:
	$(GO) run ./cmd/asapfig -ops 80 -csv -parallel 1 -outdir /tmp/asap-golden-serial all
	diff -ru -x '*.json' -x '*.ckpt' testdata/golden /tmp/asap-golden-serial
	$(GO) run ./cmd/asapfig -ops 80 -csv -parallel 8 -outdir /tmp/asap-golden-parallel all
	diff -ru -x '*.json' -x '*.ckpt' testdata/golden /tmp/asap-golden-parallel

# profile captures cpu+heap pprof of the Fig8 sweep — the run whose
# per-access memory-system path the perf work targets. Inspect with
# `go tool pprof /tmp/asap-profile/cpu.pprof`. CI's bench job uploads
# the same profiles as an artifact.
profile:
	$(GO) run ./cmd/asapfig -profile /tmp/asap-profile fig8
	@ls -l /tmp/asap-profile

# serve starts asapd in the foreground on a local store. Submit with
# curl (see EXPERIMENTS.md "Serving runs") or `make smoke` from another
# terminal; ^C shuts down gracefully.
serve:
	$(GO) run ./cmd/asapd -addr 127.0.0.1:8321 -store /tmp/asap-store

# smoke reproduces the CI service job locally: boot asapd on a fresh
# scratch store, submit one RunSpec twice via asapsmoke, assert the
# second response is a byte-identical cache hit, shut the daemon down.
smoke:
	$(GO) build -o /tmp/asap-bin/ ./cmd/asapd ./cmd/asapsmoke
	rm -rf /tmp/asap-smoke-store
	/tmp/asap-bin/asapd -addr 127.0.0.1:8321 -store /tmp/asap-smoke-store & \
	pid=$$!; \
	/tmp/asap-bin/asapsmoke -addr http://127.0.0.1:8321 -threads 4 -ops 400; rc=$$?; \
	kill $$pid; exit $$rc

# ci mirrors .github/workflows/ci.yml.
ci: build vet fmt test race lint golden-check smoke
