GO ?= go

.PHONY: all build test race vet lint bench ci

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# lint runs the repo's own static-analysis suite (cmd/asaplint): donecheck,
# detcheck, unitcheck and ledgercheck over every package in the module.
lint:
	$(GO) run ./cmd/asaplint ./...

bench:
	$(GO) test -bench=. -benchtime=1x -run=^$$ ./...

# ci mirrors .github/workflows/ci.yml.
ci: build vet test race lint
