package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleBench = `goos: linux
goarch: amd64
pkg: asap
BenchmarkFig8-8                	       1	 123000000 ns/op	 4560000 B/op	   70000 allocs/op
BenchmarkTab4-8                	       1	 456000000 ns/op
BenchmarkRunASAPCCEH-8         	       2	  50000000 ns/op
BenchmarkRunASAPCCEH-8         	       2	  48000000 ns/op
PASS
ok  	asap	3.123s
`

func TestParse(t *testing.T) {
	s, err := parse(strings.NewReader(sampleBench))
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]float64{
		"Fig8":        123000000,
		"Tab4":        456000000,
		"RunASAPCCEH": 48000000, // min of the two repeats
	}
	if len(s.Benchmarks) != len(want) {
		t.Fatalf("parsed %d benchmarks, want %d: %v", len(s.Benchmarks), len(want), s.Benchmarks)
	}
	for n, ns := range want {
		if s.Benchmarks[n] != ns {
			t.Errorf("%s = %v, want %v", n, s.Benchmarks[n], ns)
		}
	}
	// Only Fig8's line carries -benchmem columns.
	if s.Allocs["Fig8"] != 70000 || s.Bytes["Fig8"] != 4560000 {
		t.Errorf("Fig8 memory columns = %v allocs, %v bytes; want 70000, 4560000",
			s.Allocs["Fig8"], s.Bytes["Fig8"])
	}
	if _, ok := s.Allocs["Tab4"]; ok {
		t.Errorf("Tab4 has no -benchmem columns but parsed allocs: %v", s.Allocs)
	}
}

func TestParseEmpty(t *testing.T) {
	if _, err := parse(strings.NewReader("PASS\nok asap 1s\n")); err == nil {
		t.Fatal("expected an error for output with no benchmarks")
	}
}

func writeSummary(t *testing.T, dir, name string, benchmarks map[string]float64) string {
	return writeSummaryFull(t, dir, name, Summary{Benchmarks: benchmarks})
}

func writeSummaryFull(t *testing.T, dir, name string, s Summary) string {
	t.Helper()
	path := filepath.Join(dir, name)
	b, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestCompareGate: within threshold passes, beyond threshold fails, and
// benchmarks on only one side never fail the gate.
func TestCompareGate(t *testing.T) {
	dir := t.TempDir()
	base := writeSummary(t, dir, "base.json", map[string]float64{
		"Fig8": 100, "Tab4": 200, "Retired": 300,
	})

	ok := writeSummary(t, dir, "ok.json", map[string]float64{
		"Fig8": 124, "Tab4": 150, "Brand_New": 1,
	})
	var out, errb strings.Builder
	if code := run([]string{"-baseline", base, "-current", ok, "-threshold", "0.25"}, &out, &errb); code != 0 {
		t.Fatalf("within-threshold run failed (code %d): %s%s", code, out.String(), errb.String())
	}
	if !strings.Contains(out.String(), "Brand_New") || !strings.Contains(out.String(), "Retired") {
		t.Errorf("one-sided benchmarks not reported:\n%s", out.String())
	}

	bad := writeSummary(t, dir, "bad.json", map[string]float64{
		"Fig8": 126, "Tab4": 200,
	})
	out.Reset()
	errb.Reset()
	if code := run([]string{"-baseline", base, "-current", bad, "-threshold", "0.25"}, &out, &errb); code != 1 {
		t.Fatalf("regression not caught (code %d): %s", code, out.String())
	}
	if !strings.Contains(errb.String(), "Fig8") {
		t.Errorf("regression message does not name the benchmark: %q", errb.String())
	}
}

// TestAllocGate: allocs/op regressions fail independently of time, a
// zero-alloc baseline fails on any allocation, and benchmarks without
// alloc figures (old baselines) skip the alloc gate.
func TestAllocGate(t *testing.T) {
	dir := t.TempDir()
	base := writeSummaryFull(t, dir, "base.json", Summary{
		Benchmarks: map[string]float64{"Fig8": 100, "Throughput": 20, "Legacy": 50},
		Allocs:     map[string]float64{"Fig8": 1000, "Throughput": 0},
	})

	// Time flat everywhere; Fig8 allocs creep 5% (within 10%), Throughput
	// stays at zero, Legacy has no alloc figure — all pass.
	ok := writeSummaryFull(t, dir, "ok.json", Summary{
		Benchmarks: map[string]float64{"Fig8": 100, "Throughput": 20, "Legacy": 500},
		Allocs:     map[string]float64{"Fig8": 1050, "Throughput": 0},
	})
	var out, errb strings.Builder
	if code := run([]string{"-baseline", base, "-current", ok, "-threshold", "20"}, &out, &errb); code != 0 {
		t.Fatalf("within-alloc-threshold run failed (code %d): %s%s", code, out.String(), errb.String())
	}

	// Fig8 allocs up 20% and Throughput gains its first allocation — both
	// fail even though every time delta is zero.
	bad := writeSummaryFull(t, dir, "bad.json", Summary{
		Benchmarks: map[string]float64{"Fig8": 100, "Throughput": 20, "Legacy": 50},
		Allocs:     map[string]float64{"Fig8": 1200, "Throughput": 1},
	})
	out.Reset()
	errb.Reset()
	if code := run([]string{"-baseline", base, "-current", bad, "-threshold", "20"}, &out, &errb); code != 1 {
		t.Fatalf("alloc regression not caught (code %d): %s", code, out.String())
	}
	for _, n := range []string{"Fig8", "Throughput"} {
		if !strings.Contains(errb.String(), n) {
			t.Errorf("alloc regression message does not name %s: %q", n, errb.String())
		}
	}
}

// TestBytesGate: B/op regressions fail independently of time and allocs,
// a zero-byte baseline fails on any bytes, and benchmarks without byte
// figures (old baselines) skip the bytes gate.
func TestBytesGate(t *testing.T) {
	dir := t.TempDir()
	base := writeSummaryFull(t, dir, "base.json", Summary{
		Benchmarks: map[string]float64{"Fig8": 100, "Throughput": 20, "Legacy": 50},
		Bytes:      map[string]float64{"Fig8": 4000, "Throughput": 0},
	})

	// Time flat everywhere; Fig8 bytes creep 5% (within 10%), Throughput
	// stays at zero, Legacy has no byte figure — all pass.
	ok := writeSummaryFull(t, dir, "ok.json", Summary{
		Benchmarks: map[string]float64{"Fig8": 100, "Throughput": 20, "Legacy": 500},
		Bytes:      map[string]float64{"Fig8": 4200, "Throughput": 0},
	})
	var out, errb strings.Builder
	if code := run([]string{"-baseline", base, "-current", ok, "-threshold", "20"}, &out, &errb); code != 0 {
		t.Fatalf("within-bytes-threshold run failed (code %d): %s%s", code, out.String(), errb.String())
	}

	// Fig8 bytes up 20% and Throughput gains its first byte — both fail
	// even though every time delta is zero and no alloc data exists.
	bad := writeSummaryFull(t, dir, "bad.json", Summary{
		Benchmarks: map[string]float64{"Fig8": 100, "Throughput": 20, "Legacy": 50},
		Bytes:      map[string]float64{"Fig8": 4800, "Throughput": 1},
	})
	out.Reset()
	errb.Reset()
	if code := run([]string{"-baseline", base, "-current", bad, "-threshold", "20"}, &out, &errb); code != 1 {
		t.Fatalf("bytes regression not caught (code %d): %s", code, out.String())
	}
	for _, n := range []string{"Fig8", "Throughput"} {
		if !strings.Contains(errb.String(), n) {
			t.Errorf("bytes regression message does not name %s: %q", n, errb.String())
		}
	}
	if !strings.Contains(out.String(), "REGRESSED (bytes)") {
		t.Errorf("report does not label the bytes verdict:\n%s", out.String())
	}
}

// TestToJSONRoundTrip: -tojson output loads back as a valid summary.
func TestToJSONRoundTrip(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "bench.txt")
	if err := os.WriteFile(in, []byte(sampleBench), 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errb strings.Builder
	if code := run([]string{"-tojson", in}, &out, &errb); code != 0 {
		t.Fatalf("tojson failed: %s", errb.String())
	}
	var s Summary
	if err := json.Unmarshal([]byte(out.String()), &s); err != nil {
		t.Fatal(err)
	}
	if s.Benchmarks["Fig8"] != 123000000 {
		t.Errorf("round trip lost Fig8: %v", s.Benchmarks)
	}
}

func TestUsageError(t *testing.T) {
	var out, errb strings.Builder
	if code := run(nil, &out, &errb); code != 2 {
		t.Fatalf("expected usage error, got %d", code)
	}
}
