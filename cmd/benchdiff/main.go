// Command benchdiff converts `go test -bench` output into a JSON summary
// and compares two summaries, failing when any benchmark regresses beyond
// a threshold. CI uses it as the bench-regression gate:
//
//	go test -bench 'Fig8|Tab4|RunASAP' -benchtime 1x -run '^$' . > bench.txt
//	benchdiff -tojson bench.txt > BENCH_ci.json
//	benchdiff -baseline BENCH_baseline.json -current BENCH_ci.json -threshold 0.25
//
// The comparison is asymmetric by design: regressions (current slower
// than baseline by more than threshold) fail; improvements and benchmarks
// present on only one side are reported but never fail, so adding or
// retiring benchmarks does not break the gate. Refresh the committed
// baseline with `make bench-baseline` (or from CI's uploaded BENCH_ci.json
// artifact when runner hardware shifts).
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
)

// Summary is the JSON document: benchmark name (minus the -GOMAXPROCS
// suffix) to nanoseconds per operation.
type Summary struct {
	Benchmarks map[string]float64 `json:"benchmarks_ns_per_op"`
}

// benchLine matches one result line of `go test -bench` output, e.g.
//
//	BenchmarkFig8-8    1    123456789 ns/op    456 B/op    7 allocs/op
var benchLine = regexp.MustCompile(`^Benchmark(\S+?)(?:-\d+)?\s+\d+\s+([0-9.]+) ns/op`)

// parse extracts benchmark results from go test -bench output. Repeated
// runs of one benchmark (-count > 1) keep the minimum, the conventional
// noise floor.
func parse(r io.Reader) (*Summary, error) {
	s := &Summary{Benchmarks: map[string]float64{}}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		ns, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			return nil, fmt.Errorf("benchdiff: bad ns/op in %q: %w", sc.Text(), err)
		}
		if old, ok := s.Benchmarks[m[1]]; !ok || ns < old {
			s.Benchmarks[m[1]] = ns
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(s.Benchmarks) == 0 {
		return nil, fmt.Errorf("benchdiff: no benchmark result lines found")
	}
	return s, nil
}

func load(path string) (*Summary, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var s Summary
	if err := json.Unmarshal(b, &s); err != nil {
		return nil, fmt.Errorf("benchdiff: %s: %w", path, err)
	}
	if len(s.Benchmarks) == 0 {
		return nil, fmt.Errorf("benchdiff: %s: no benchmarks", path)
	}
	return &s, nil
}

// compare reports each benchmark's delta and returns the regressed names.
func compare(base, cur *Summary, threshold float64, w io.Writer) []string {
	names := make([]string, 0, len(base.Benchmarks))
	for n := range base.Benchmarks {
		names = append(names, n)
	}
	sort.Strings(names)
	var regressed []string
	for _, n := range names {
		b := base.Benchmarks[n]
		c, ok := cur.Benchmarks[n]
		if !ok {
			fmt.Fprintf(w, "%-32s baseline %12.0f ns/op  (missing from current run, ignored)\n", n, b)
			continue
		}
		delta := (c - b) / b
		verdict := "ok"
		if delta > threshold {
			verdict = "REGRESSED"
			regressed = append(regressed, n)
		}
		fmt.Fprintf(w, "%-32s baseline %12.0f  current %12.0f  %+6.1f%%  %s\n",
			n, b, c, delta*100, verdict)
	}
	extra := make([]string, 0, len(cur.Benchmarks))
	for n := range cur.Benchmarks {
		if _, ok := base.Benchmarks[n]; !ok {
			extra = append(extra, n)
		}
	}
	sort.Strings(extra)
	for _, n := range extra {
		fmt.Fprintf(w, "%-32s current %13.0f ns/op  (new, not in baseline)\n", n, cur.Benchmarks[n])
	}
	return regressed
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(argv []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("benchdiff", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		tojson    = fs.String("tojson", "", "parse `go test -bench` output from this file ('-' = stdin) and print a JSON summary")
		baseline  = fs.String("baseline", "", "baseline JSON summary")
		current   = fs.String("current", "", "current JSON summary to compare against the baseline")
		threshold = fs.Float64("threshold", 0.25, "fail when current exceeds baseline by more than this fraction")
	)
	if err := fs.Parse(argv); err != nil {
		return 2
	}
	switch {
	case *tojson != "":
		in := io.Reader(os.Stdin)
		if *tojson != "-" {
			f, err := os.Open(*tojson)
			if err != nil {
				fmt.Fprintln(stderr, err)
				return 1
			}
			defer f.Close()
			in = f
		}
		s, err := parse(in)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(s); err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		return 0

	case *baseline != "" && *current != "":
		b, err := load(*baseline)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		c, err := load(*current)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		if regressed := compare(b, c, *threshold, stdout); len(regressed) > 0 {
			fmt.Fprintf(stderr, "benchdiff: %d benchmark(s) regressed >%g%%: %v\n",
				len(regressed), *threshold*100, regressed)
			return 1
		}
		fmt.Fprintf(stdout, "benchdiff: no benchmark regressed >%g%%\n", *threshold*100)
		return 0

	default:
		fmt.Fprintln(stderr, "usage: benchdiff -tojson BENCH.txt | benchdiff -baseline A.json -current B.json [-threshold 0.25]")
		return 2
	}
}
