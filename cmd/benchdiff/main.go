// Command benchdiff converts `go test -bench` output into a JSON summary
// and compares two summaries, failing when any benchmark regresses beyond
// a threshold. CI uses it as the bench-regression gate:
//
//	go test -bench 'Fig8|Tab4|RunASAP' -benchtime 1x -run '^$' . > bench.txt
//	benchdiff -tojson bench.txt > BENCH_ci.json
//	benchdiff -baseline BENCH_baseline.json -current BENCH_ci.json -threshold 0.25
//
// The comparison is asymmetric by design: regressions fail — current
// slower than baseline by more than -threshold, allocating more than
// -alloc-threshold over baseline allocs/op, or using more than
// -bytes-threshold over baseline B/op (any allocation or byte fails a
// zero baseline) — while improvements and benchmarks present on
// only one side are reported but never fail, so adding or retiring
// benchmarks does not break the gate. Refresh the committed
// baseline with `make bench-baseline` (or from CI's uploaded BENCH_ci.json
// artifact when runner hardware shifts).
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
)

// Summary is the JSON document: benchmark name (minus the -GOMAXPROCS
// suffix) to nanoseconds, bytes, and allocations per operation. The alloc
// and byte maps are present only when the bench run used -benchmem; older
// baselines without them still load, and the alloc gate skips benchmarks
// they lack.
type Summary struct {
	Benchmarks map[string]float64 `json:"benchmarks_ns_per_op"`
	Allocs     map[string]float64 `json:"benchmarks_allocs_per_op,omitempty"`
	Bytes      map[string]float64 `json:"benchmarks_bytes_per_op,omitempty"`
}

// benchLine matches one result line of `go test -bench` output, with the
// optional -benchmem columns, e.g.
//
//	BenchmarkFig8-8    1    123456789 ns/op    456 B/op    7 allocs/op
var benchLine = regexp.MustCompile(`^Benchmark(\S+?)(?:-\d+)?\s+\d+\s+([0-9.]+) ns/op(?:\s+([0-9.]+) B/op\s+([0-9.]+) allocs/op)?`)

// parse extracts benchmark results from go test -bench output. Repeated
// runs of one benchmark (-count > 1) keep the minimum of each metric, the
// conventional noise floor.
func parse(r io.Reader) (*Summary, error) {
	s := &Summary{Benchmarks: map[string]float64{}}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		ns, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			return nil, fmt.Errorf("benchdiff: bad ns/op in %q: %w", sc.Text(), err)
		}
		if old, ok := s.Benchmarks[m[1]]; !ok || ns < old {
			s.Benchmarks[m[1]] = ns
		}
		if m[3] == "" {
			continue
		}
		bytes, err := strconv.ParseFloat(m[3], 64)
		if err != nil {
			return nil, fmt.Errorf("benchdiff: bad B/op in %q: %w", sc.Text(), err)
		}
		allocs, err := strconv.ParseFloat(m[4], 64)
		if err != nil {
			return nil, fmt.Errorf("benchdiff: bad allocs/op in %q: %w", sc.Text(), err)
		}
		if s.Allocs == nil {
			s.Allocs = map[string]float64{}
			s.Bytes = map[string]float64{}
		}
		if old, ok := s.Bytes[m[1]]; !ok || bytes < old {
			s.Bytes[m[1]] = bytes
		}
		if old, ok := s.Allocs[m[1]]; !ok || allocs < old {
			s.Allocs[m[1]] = allocs
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(s.Benchmarks) == 0 {
		return nil, fmt.Errorf("benchdiff: no benchmark result lines found")
	}
	return s, nil
}

func load(path string) (*Summary, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var s Summary
	if err := json.Unmarshal(b, &s); err != nil {
		return nil, fmt.Errorf("benchdiff: %s: %w", path, err)
	}
	if len(s.Benchmarks) == 0 {
		return nil, fmt.Errorf("benchdiff: %s: no benchmarks", path)
	}
	return &s, nil
}

// compare reports each benchmark's delta and returns the regressed names.
// Time regresses past threshold; allocations regress past allocThreshold,
// and a zero-alloc baseline fails on any allocation at all — a benchmark
// that earned 0 allocs/op must keep it. Bytes/op regress past
// bytesThreshold under the same zero-baseline rule. Benchmarks missing an
// alloc or byte figure on either side (pre-benchmem baselines) skip that
// gate.
func compare(base, cur *Summary, threshold, allocThreshold, bytesThreshold float64, w io.Writer) []string {
	names := make([]string, 0, len(base.Benchmarks))
	for n := range base.Benchmarks {
		names = append(names, n)
	}
	sort.Strings(names)
	var regressed []string
	for _, n := range names {
		b := base.Benchmarks[n]
		c, ok := cur.Benchmarks[n]
		if !ok {
			fmt.Fprintf(w, "%-32s baseline %12.0f ns/op  (missing from current run, ignored)\n", n, b)
			continue
		}
		delta := (c - b) / b
		verdict := "ok"
		if delta > threshold {
			verdict = "REGRESSED"
		}
		if ab, aok := base.Allocs[n]; aok {
			if ac, aok := cur.Allocs[n]; aok && allocRegressed(ab, ac, allocThreshold) {
				verdict = "REGRESSED (allocs)"
				fmt.Fprintf(w, "%-32s baseline %12.0f  current %12.0f  allocs/op\n", n, ab, ac)
			}
		}
		if bb, bok := base.Bytes[n]; bok {
			if bc, bok := cur.Bytes[n]; bok && allocRegressed(bb, bc, bytesThreshold) {
				verdict = "REGRESSED (bytes)"
				fmt.Fprintf(w, "%-32s baseline %12.0f  current %12.0f  B/op\n", n, bb, bc)
			}
		}
		if verdict != "ok" {
			regressed = append(regressed, n)
		}
		fmt.Fprintf(w, "%-32s baseline %12.0f  current %12.0f  %+6.1f%%  %s\n",
			n, b, c, delta*100, verdict)
	}
	extra := make([]string, 0, len(cur.Benchmarks))
	for n := range cur.Benchmarks {
		if _, ok := base.Benchmarks[n]; !ok {
			extra = append(extra, n)
		}
	}
	sort.Strings(extra)
	for _, n := range extra {
		fmt.Fprintf(w, "%-32s current %13.0f ns/op  (new, not in baseline)\n", n, cur.Benchmarks[n])
	}
	return regressed
}

// allocRegressed applies the alloc (and bytes) gate: any increase from a
// zero baseline fails, otherwise an increase beyond the fractional
// threshold.
func allocRegressed(base, cur, threshold float64) bool {
	if base == 0 {
		return cur > 0
	}
	return (cur-base)/base > threshold
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(argv []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("benchdiff", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		tojson    = fs.String("tojson", "", "parse `go test -bench` output from this file ('-' = stdin) and print a JSON summary")
		baseline  = fs.String("baseline", "", "baseline JSON summary")
		current   = fs.String("current", "", "current JSON summary to compare against the baseline")
		threshold = fs.Float64("threshold", 0.25, "fail when current exceeds baseline by more than this fraction")
		allocTh   = fs.Float64("alloc-threshold", 0.10, "fail when allocs/op exceeds baseline by more than this fraction (a 0 allocs/op baseline fails on any allocation)")
		bytesTh   = fs.Float64("bytes-threshold", 0.10, "fail when B/op exceeds baseline by more than this fraction (a 0 B/op baseline fails on any byte)")
	)
	if err := fs.Parse(argv); err != nil {
		return 2
	}
	switch {
	case *tojson != "":
		in := io.Reader(os.Stdin)
		if *tojson != "-" {
			f, err := os.Open(*tojson)
			if err != nil {
				fmt.Fprintln(stderr, err)
				return 1
			}
			defer f.Close()
			in = f
		}
		s, err := parse(in)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(s); err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		return 0

	case *baseline != "" && *current != "":
		b, err := load(*baseline)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		c, err := load(*current)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		if regressed := compare(b, c, *threshold, *allocTh, *bytesTh, stdout); len(regressed) > 0 {
			fmt.Fprintf(stderr, "benchdiff: %d benchmark(s) regressed (time >%g%%, allocs >%g%%, or bytes >%g%%): %v\n",
				len(regressed), *threshold*100, *allocTh*100, *bytesTh*100, regressed)
			return 1
		}
		fmt.Fprintf(stdout, "benchdiff: no benchmark regressed (time >%g%%, allocs >%g%%, bytes >%g%%)\n", *threshold*100, *allocTh*100, *bytesTh*100)
		return 0

	default:
		fmt.Fprintln(stderr, "usage: benchdiff -tojson BENCH.txt | benchdiff -baseline A.json -current B.json [-threshold 0.25]")
		return 2
	}
}
