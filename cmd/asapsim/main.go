// Command asapsim runs one workload under one persistence model and prints
// the execution summary and gem5-style statistics.
//
// Usage:
//
//	asapsim -workload cceh -model asap_rp -threads 4 -ops 600
//	asapsim -trace out.json -timeline out.csv -workload atlas_queue
//	asapsim -stats -workload cceh
//	asapsim -save-spec run.json            # capture the flags as a RunSpec
//	asapsim -spec run.json                 # replay a RunSpec exactly
//	asapsim -shards 2 -workload cceh       # sharded engine, identical results
//
// Models: baseline, hops_ep, hops_rp, asap_ep, asap_rp, eadr.
// Workloads: see -list.
//
// -trace writes a Chrome trace-event JSON of the run — open it in
// Perfetto (ui.perfetto.dev) or chrome://tracing. One track per core
// (dfence/lock-wait spans), per persist buffer (epoch activity), and per
// memory controller (flush service); counters record queue occupancies.
// -timeline writes a CSV of occupancy samples (persist buffers, epoch
// tables, WPQs, recovery tables) every -interval cycles.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"asap/internal/checkpoint"
	"asap/internal/config"
	"asap/internal/machine"
	"asap/internal/model"
	"asap/internal/obs"
	"asap/internal/runspec"
	"asap/internal/sim"
	"asap/internal/trace"
	"asap/internal/workload"
)

func main() {
	var (
		wl       = flag.String("workload", "cceh", "workload name (see -list)")
		mdl      = flag.String("model", "asap_rp", "persistence model: "+strings.Join(model.ExtendedNames(), ", "))
		threads  = flag.Int("threads", 4, "software threads (= cores used)")
		ops      = flag.Int("ops", 600, "structure-level operations per thread")
		keyRange = flag.Uint64("keys", 4096, "key universe size")
		valSize  = flag.Int("valuesize", 64, "value size in bytes (16-128 in the paper)")
		seed     = flag.Uint64("seed", 1, "workload generator seed")
		mcs      = flag.Int("mcs", 2, "memory controllers")
		shards   = flag.Int("shards", 1, "timing domains (1 = serial engine; >1 runs the MCs on a parallel shard, same results)")
		list     = flag.Bool("list", false, "list workloads and exit")
		saveTr   = flag.String("save-trace", "", "write the generated trace to this file and exit")
		loadTr   = flag.String("load-trace", "", "replay a trace file instead of generating one")
		traceOut = flag.String("trace", "", "write a Chrome trace-event JSON of the run to this file (open in Perfetto)")
		tlOut    = flag.String("timeline", "", "write a CSV occupancy timeline of the run to this file")
		interval = flag.Uint64("interval", 0, "timeline sampling interval in cycles (0 = default)")
		describe = flag.Bool("stats", false, "print statistics with their registered descriptions")
		specIn   = flag.String("spec", "", "load a RunSpec JSON (overrides workload/model/params flags)")
		specOut  = flag.String("save-spec", "", "write the run's canonical RunSpec JSON to this file and exit")
		ckptOut  = flag.String("checkpoint", "", "advance to -checkpoint-at, save a checkpoint image to this file, then finish the run")
		ckptAt   = flag.Uint64("checkpoint-at", 0, "cycle to checkpoint at (the save lands on the first quiescent cycle >= this)")
		ckptIn   = flag.String("restore", "", "restore a checkpoint image and continue the run from it (ignores workload/model flags)")
	)
	flag.Parse()

	if *list {
		fmt.Println("workloads:", strings.Join(workload.Names(), " "))
		fmt.Println("models:   ", strings.Join(model.ExtendedNames(), " "))
		return
	}

	p := workload.Params{
		Threads:      *threads,
		OpsPerThread: *ops,
		KeyRange:     *keyRange,
		ValueSize:    *valSize,
		Seed:         *seed,
	}
	cfg := config.Default()
	if *threads > cfg.Cores {
		cfg.Cores = *threads
	}
	cfg.MCs = *mcs
	spec := runspec.New(*wl, *mdl, p, cfg)
	spec.Shards = *shards
	spec.Normalize()

	if *specIn != "" {
		b, err := os.ReadFile(*specIn)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		spec, err = runspec.Parse(b)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", *specIn, err)
			os.Exit(1)
		}
		*wl, *mdl, p, cfg = spec.Workload, spec.Model, spec.Params, spec.Config
	}

	if *specOut != "" {
		canon, err := spec.Canonical()
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := os.WriteFile(*specOut, append(canon, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s: spec %s, hash %s\n", *specOut, spec, spec.MustHash())
		return
	}

	if *ckptIn != "" {
		img, err := os.ReadFile(*ckptIn)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		m, err := checkpoint.Load(img)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("restored          %s at cycle %d\n", *ckptIn, m.Eng.Now())
		printRun(m.Trace(), m.Run(0), *describe, "")
		return
	}

	var tr *trace.Trace
	var err error
	if *loadTr != "" {
		f, ferr := os.Open(*loadTr)
		if ferr != nil {
			fmt.Fprintln(os.Stderr, ferr)
			os.Exit(1)
		}
		tr, err = trace.Read(f)
		f.Close()
	} else {
		tr, err = workload.Generate(*wl, p)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if *saveTr != "" {
		f, ferr := os.Create(*saveTr)
		if ferr != nil {
			fmt.Fprintln(os.Stderr, ferr)
			os.Exit(1)
		}
		if err := tr.Write(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		f.Close()
		fmt.Printf("wrote %s: %d threads, %d ops\n", *saveTr, tr.NumThreads(), tr.TotalOps())
		return
	}

	// A spec file may request sharding too; the flag default is serial.
	nshards := spec.Shards
	if nshards == 0 {
		nshards = 1
	}
	if nshards > 1 && (*traceOut != "" || *tlOut != "") {
		fmt.Fprintln(os.Stderr, "asapsim: -trace/-timeline require the serial engine (-shards=1)")
		os.Exit(1)
	}
	m, err := machine.NewSharded(cfg, *mdl, tr, nshards)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	var col *obs.Collector
	if *traceOut != "" {
		col = obs.NewCollector(m.Eng.Now)
		m.AttachTracer(col)
	}
	var tl *obs.Timeline
	if *tlOut != "" {
		tl = m.EnableTimeline(sim.Cycles(*interval))
	}
	if *ckptOut != "" {
		if nshards > 1 || col != nil || tl != nil {
			fmt.Fprintln(os.Stderr, "asapsim: -checkpoint requires the serial engine without -trace/-timeline")
			os.Exit(1)
		}
		if *ckptAt > 0 {
			m.Advance(*ckptAt)
		}
		img, at, err := checkpoint.SaveNextQuiescent(m, 1<<20)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := os.WriteFile(*ckptOut, img, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("checkpoint        %s at cycle %d (%d bytes)\n", *ckptOut, at, len(img))
	}

	res := m.Run(0)
	if col != nil {
		writeArtifact(*traceOut, col.WriteChromeTrace)
	}
	if tl != nil {
		writeArtifact(*tlOut, tl.WriteCSV)
	}

	specHash := ""
	if *loadTr == "" {
		// A generated run is fully described by its spec; the hash is the
		// content address asapd would file this result under.
		specHash = spec.MustHash()
	}
	printRun(tr, res, *describe, specHash)
}

// printRun emits the standard execution summary.
func printRun(tr *trace.Trace, res machine.Result, describe bool, specHash string) {
	fmt.Printf("workload          %s (%d threads, %d trace ops)\n",
		tr.Name, tr.NumThreads(), tr.TotalOps())
	fmt.Printf("model             %s\n", res.ModelName)
	if specHash != "" {
		fmt.Printf("runspec           %s\n", specHash)
	}
	fmt.Printf("execution         %d cycles (%.3f ms @2GHz)\n",
		res.Cycles, float64(res.Cycles)/2e6)
	fmt.Printf("pmWrites          %d\n", res.PMWrites)
	fmt.Printf("pmReads           %d\n", res.PMReads)
	if model.Speculative(res.ModelName) {
		fmt.Printf("rtMaxOccupancy    %d\n", res.RTMaxOcc)
	}
	fmt.Printf("wpqMaxOccupancy   %d\n", res.WPQMaxOcc)
	if describe {
		fmt.Printf("\n--- stats ---\n%s", res.Stats.Describe())
	} else {
		fmt.Printf("\n--- stats ---\n%s", res.Stats)
	}
}

// writeArtifact serializes one run artifact into path via write.
func writeArtifact(path string, write func(w io.Writer) error) {
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	werr := write(f)
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		fmt.Fprintln(os.Stderr, werr)
		os.Exit(1)
	}
}
