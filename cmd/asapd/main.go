// Command asapd serves simulations over HTTP/JSON: a long-running
// daemon wrapping the experiment harness behind a content-addressed run
// cache. Determinism makes every result globally cacheable — identical
// RunSpecs are simulated once, persisted under the SHA-256 of their
// canonical form, and answered byte-identically forever after.
//
// Usage:
//
//	asapd -addr :8080 -store /var/lib/asap/store
//	asapd -addr 127.0.0.1:8321 -store /tmp/asap-store -parallel 8 -pprof
//
// Endpoints:
//
//	POST /v1/runs               submit a RunSpec JSON (see runspec); add ?async=1 for 202 + id
//	GET  /v1/runs/{id}          status (with a progress snapshot) or result by content address
//	GET  /v1/runs/{id}/events   live progress stream (Server-Sent Events)
//	GET  /v1/healthz            liveness
//	GET  /v1/stats              server counters + the stats registry vocabulary
//	GET  /metrics               Prometheus text-format exposition
//	GET  /debug/pprof/          Go profiling endpoints (only with -pprof)
//
// Submit with curl:
//
//	curl -s -X POST localhost:8080/v1/runs -d '{
//	  "workload": "cceh", "model": "asap_rp",
//	  "params": {"Threads": 4, "OpsPerThread": 400, "Seed": 1}
//	}'
//
// The X-Asap-Cache response header reports hit (served from the store),
// miss (simulated for this request), or inflight (joined a simulation
// another client started).
//
// Logs are structured JSON on stderr (log/slog): one line per request
// and per run-lifecycle event (admitted, started, finished, stored),
// each carrying the run's content hash. -quiet raises the level to
// warn+error, so failures still surface.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"asap/internal/server"
)

func main() {
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		store    = flag.String("store", "", "content-addressed result store directory (required)")
		parallel = flag.Int("parallel", 0, "max concurrent simulations (0 = GOMAXPROCS)")
		maxOps   = flag.Int("max-ops", 0, "per-request cap on Threads*OpsPerThread (0 = 1<<20)")
		pprof    = flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
		quiet    = flag.Bool("quiet", false, "log only warnings and errors")
	)
	flag.Parse()
	if *store == "" {
		fmt.Fprintln(os.Stderr, "asapd: -store is required (the result store directory)")
		os.Exit(2)
	}

	level := slog.LevelInfo
	if *quiet {
		level = slog.LevelWarn
	}
	logger := slog.New(slog.NewJSONHandler(os.Stderr, &slog.HandlerOptions{Level: level}))

	srv, err := server.New(server.Options{
		StoreDir:    *store,
		Parallel:    *parallel,
		MaxTotalOps: *maxOps,
		Logger:      logger,
		Pprof:       *pprof,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "asapd:", err)
		os.Exit(1)
	}

	hs := &http.Server{Addr: *addr, Handler: srv.Handler()}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	logger.Info("serving", "addr", *addr, "store", *store, "pprof", *pprof)

	select {
	case <-ctx.Done():
		logger.Info("shutting down")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := hs.Shutdown(shutdownCtx); err != nil {
			logger.Error("shutdown", "err", err.Error())
		}
	case err := <-errc:
		if !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintln(os.Stderr, "asapd:", err)
			os.Exit(1)
		}
	}
}
