// Command asapd serves simulations over HTTP/JSON: a long-running
// daemon wrapping the experiment harness behind a content-addressed run
// cache. Determinism makes every result globally cacheable — identical
// RunSpecs are simulated once, persisted under the SHA-256 of their
// canonical form, and answered byte-identically forever after.
//
// Usage:
//
//	asapd -addr :8080 -store /var/lib/asap/store
//	asapd -addr 127.0.0.1:8321 -store /tmp/asap-store -parallel 8
//
// Endpoints:
//
//	POST /v1/runs           submit a RunSpec JSON (see runspec); add ?async=1 for 202 + id
//	GET  /v1/runs/{id}      status (with progressCycles) or result by content address
//	GET  /v1/healthz        liveness
//	GET  /v1/stats          server counters + the stats registry vocabulary
//
// Submit with curl:
//
//	curl -s -X POST localhost:8080/v1/runs -d '{
//	  "workload": "cceh", "model": "asap_rp",
//	  "params": {"Threads": 4, "OpsPerThread": 400, "Seed": 1}
//	}'
//
// The X-Asap-Cache response header reports hit (served from the store),
// miss (simulated for this request), or inflight (joined a simulation
// another client started).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"asap/internal/server"
)

func main() {
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		store    = flag.String("store", "", "content-addressed result store directory (required)")
		parallel = flag.Int("parallel", 0, "max concurrent simulations (0 = GOMAXPROCS)")
		maxOps   = flag.Int("max-ops", 0, "per-request cap on Threads*OpsPerThread (0 = 1<<20)")
		quiet    = flag.Bool("quiet", false, "suppress per-run log lines")
	)
	flag.Parse()
	if *store == "" {
		fmt.Fprintln(os.Stderr, "asapd: -store is required (the result store directory)")
		os.Exit(2)
	}

	logger := log.New(os.Stderr, "", log.LstdFlags)
	var srvLog *log.Logger
	if !*quiet {
		srvLog = logger
	}
	srv, err := server.New(server.Options{
		StoreDir:    *store,
		Parallel:    *parallel,
		MaxTotalOps: *maxOps,
		Log:         srvLog,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "asapd:", err)
		os.Exit(1)
	}

	hs := &http.Server{Addr: *addr, Handler: srv.Handler()}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	logger.Printf("asapd: serving on %s, store %s", *addr, *store)

	select {
	case <-ctx.Done():
		logger.Print("asapd: shutting down")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := hs.Shutdown(shutdownCtx); err != nil {
			logger.Printf("asapd: shutdown: %v", err)
		}
	case err := <-errc:
		if !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintln(os.Stderr, "asapd:", err)
			os.Exit(1)
		}
	}
}
