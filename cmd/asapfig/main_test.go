package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func readFile(dir, name string) (string, error) {
	b, err := os.ReadFile(filepath.Join(dir, name))
	return string(b), err
}

// TestUnknownExperiment: a bad experiment ID must produce a usable error
// naming the ID on stderr and exit code 1 — the harness used to panic out
// of main with no message.
func TestUnknownExperiment(t *testing.T) {
	var out, errb strings.Builder
	code := run([]string{"-ops", "40", "nope"}, &out, &errb)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1 (stderr: %s)", code, errb.String())
	}
	msg := errb.String()
	if !strings.Contains(msg, "nope") || !strings.Contains(msg, "unknown experiment") {
		t.Fatalf("stderr does not name the failing experiment: %q", msg)
	}
	if out.Len() != 0 {
		t.Errorf("stdout not empty on failure: %q", out.String())
	}
}

// TestUsage: no arguments is a usage error (exit 2) listing the IDs.
func TestUsage(t *testing.T) {
	var out, errb strings.Builder
	if code := run(nil, &out, &errb); code != 2 {
		t.Fatalf("exit code = %d, want 2", code)
	}
	if !strings.Contains(errb.String(), "fig8") {
		t.Errorf("usage message does not list experiments: %q", errb.String())
	}
}

// TestList prints one experiment ID per line.
func TestList(t *testing.T) {
	var out, errb strings.Builder
	if code := run([]string{"-list"}, &out, &errb); code != 0 {
		t.Fatalf("exit code = %d, want 0 (stderr: %s)", code, errb.String())
	}
	ids := strings.Fields(out.String())
	if len(ids) < 10 {
		t.Fatalf("expected all experiment IDs, got %v", ids)
	}
}

// TestSingleExperimentCSV smoke-runs the cheapest simulated experiment end
// to end through the CLI at tiny scale.
func TestSingleExperimentCSV(t *testing.T) {
	var out, errb strings.Builder
	code := run([]string{"-ops", "20", "-csv", "-parallel", "2", "tab5"}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit code = %d, stderr: %s", code, errb.String())
	}
	if !strings.HasPrefix(out.String(), "structure,") {
		t.Errorf("unexpected CSV output: %q", out.String())
	}
}

// TestOutdir writes per-experiment files.
func TestOutdir(t *testing.T) {
	dir := t.TempDir()
	var out, errb strings.Builder
	code := run([]string{"-ops", "20", "-csv", "-outdir", dir, "tab5"}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit code = %d, stderr: %s", code, errb.String())
	}
	if out.Len() != 0 {
		t.Errorf("stdout should be empty with -outdir, got %q", out.String())
	}
	b, err := readFile(dir, "tab5.csv")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(b, "structure,") {
		t.Errorf("tab5.csv content: %q", b)
	}
}
