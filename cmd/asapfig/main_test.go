package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func readFile(dir, name string) (string, error) {
	b, err := os.ReadFile(filepath.Join(dir, name))
	return string(b), err
}

// TestUnknownExperiment: a bad experiment ID must produce a usable error
// naming the ID on stderr and exit code 1 — the harness used to panic out
// of main with no message.
func TestUnknownExperiment(t *testing.T) {
	var out, errb strings.Builder
	code := run([]string{"-ops", "40", "nope"}, &out, &errb)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1 (stderr: %s)", code, errb.String())
	}
	msg := errb.String()
	if !strings.Contains(msg, "nope") || !strings.Contains(msg, "unknown experiment") {
		t.Fatalf("stderr does not name the failing experiment: %q", msg)
	}
	if out.Len() != 0 {
		t.Errorf("stdout not empty on failure: %q", out.String())
	}
}

// TestUsage: no arguments is a usage error (exit 2) listing the IDs.
func TestUsage(t *testing.T) {
	var out, errb strings.Builder
	if code := run(nil, &out, &errb); code != 2 {
		t.Fatalf("exit code = %d, want 2", code)
	}
	if !strings.Contains(errb.String(), "fig8") {
		t.Errorf("usage message does not list experiments: %q", errb.String())
	}
}

// TestList prints one experiment ID per line.
func TestList(t *testing.T) {
	var out, errb strings.Builder
	if code := run([]string{"-list"}, &out, &errb); code != 0 {
		t.Fatalf("exit code = %d, want 0 (stderr: %s)", code, errb.String())
	}
	ids := strings.Fields(out.String())
	if len(ids) < 10 {
		t.Fatalf("expected all experiment IDs, got %v", ids)
	}
}

// TestSingleExperimentCSV smoke-runs the cheapest simulated experiment end
// to end through the CLI at tiny scale.
func TestSingleExperimentCSV(t *testing.T) {
	var out, errb strings.Builder
	code := run([]string{"-ops", "20", "-csv", "-parallel", "2", "tab5"}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit code = %d, stderr: %s", code, errb.String())
	}
	if !strings.HasPrefix(out.String(), "structure,") {
		t.Errorf("unexpected CSV output: %q", out.String())
	}
}

// TestPerfReport: -perf leaves stdout untouched and reports per-experiment
// wall time and aggregate throughput on stderr.
func TestPerfReport(t *testing.T) {
	var out, errb, plain, nperr strings.Builder
	code := run([]string{"-ops", "20", "-csv", "-perf", "tab5"}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit code = %d, stderr: %s", code, errb.String())
	}
	msg := errb.String()
	if !strings.Contains(msg, "perf: tab5") || !strings.Contains(msg, "cycles/s") {
		t.Fatalf("perf report missing from stderr: %q", msg)
	}
	if run([]string{"-ops", "20", "-csv", "tab5"}, &plain, &nperr); out.String() != plain.String() {
		t.Error("-perf changed stdout")
	}
}

// TestProfileAndTraceDir: -profile writes cpu/heap profiles and -tracedir
// captures one trace JSON + timeline CSV per executed simulation.
func TestProfileAndTraceDir(t *testing.T) {
	prof, traces := t.TempDir(), t.TempDir()
	var out, errb strings.Builder
	// tab5 is analytic; fig2 is the cheapest experiment that simulates.
	code := run([]string{"-ops", "20", "-csv", "-profile", prof, "-tracedir", traces, "fig2"}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit code = %d, stderr: %s", code, errb.String())
	}
	for _, name := range []string{"cpu.pprof", "heap.pprof"} {
		if _, err := os.Stat(filepath.Join(prof, name)); err != nil {
			t.Errorf("missing profile %s: %v", name, err)
		}
	}
	ents, err := os.ReadDir(traces)
	if err != nil {
		t.Fatal(err)
	}
	var nTrace, nTimeline int
	for _, e := range ents {
		switch {
		case strings.HasSuffix(e.Name(), ".trace.json"):
			nTrace++
		case strings.HasSuffix(e.Name(), ".timeline.csv"):
			nTimeline++
		}
	}
	if nTrace == 0 || nTrace != nTimeline {
		t.Fatalf("captured %d traces / %d timelines, want equal and nonzero", nTrace, nTimeline)
	}
}

// TestOutdir writes per-experiment files.
func TestOutdir(t *testing.T) {
	dir := t.TempDir()
	var out, errb strings.Builder
	code := run([]string{"-ops", "20", "-csv", "-outdir", dir, "tab5"}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit code = %d, stderr: %s", code, errb.String())
	}
	if out.Len() != 0 {
		t.Errorf("stdout should be empty with -outdir, got %q", out.String())
	}
	b, err := readFile(dir, "tab5.csv")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(b, "structure,") {
		t.Errorf("tab5.csv content: %q", b)
	}
}
