// Command asapfig regenerates the figures and tables of the ASAP paper's
// evaluation section.
//
// Usage:
//
//	asapfig fig8                  # one experiment
//	asapfig all                   # everything
//	asapfig -csv fig13            # CSV output
//	asapfig -ops 400 fig10        # publication scale (default); -ops 80 is quick
//	asapfig -parallel 8 all       # 8 concurrent simulations (0 = GOMAXPROCS)
//	asapfig -csv -outdir out all  # one file per experiment instead of stdout
//	asapfig -list                 # print experiment IDs, one per line
//
// Independent simulations fan out across a worker pool; results are
// deterministic, so output is byte-identical at any -parallel setting.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"asap/internal/harness"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main with injectable args and streams, for testing. It returns
// the process exit code: 0 on success, 1 when an experiment fails, 2 on
// usage errors.
func run(argv []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("asapfig", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		ops      = fs.Int("ops", 400, "structure-level operations per thread (scale)")
		seed     = fs.Uint64("seed", 1, "workload seed")
		csv      = fs.Bool("csv", false, "emit CSV instead of text tables")
		parallel = fs.Int("parallel", 0, "max concurrent simulations (0 = GOMAXPROCS, 1 = serial)")
		outdir   = fs.String("outdir", "", "write one <experiment>.csv/.txt per experiment into this directory instead of stdout")
		list     = fs.Bool("list", false, "print the experiment IDs and exit")
	)
	if err := fs.Parse(argv); err != nil {
		return 2
	}
	if *list {
		for _, id := range harness.Experiments() {
			fmt.Fprintln(stdout, id)
		}
		return 0
	}
	args := fs.Args()
	if len(args) == 0 {
		fmt.Fprintf(stderr, "usage: asapfig [-ops N] [-csv] [-parallel N] [-outdir DIR] <%s|all>\n",
			strings.Join(harness.Experiments(), "|"))
		return 2
	}

	ids := args
	if len(args) == 1 && args[0] == "all" {
		ids = harness.Experiments()
	}

	h := harness.New(harness.Options{Ops: *ops, Seed: *seed, Parallel: *parallel})
	tbs, err := h.Tables(ids)
	if err != nil {
		// Tables wraps the first failure with its experiment ID.
		fmt.Fprintf(stderr, "asapfig: %v\n", err)
		return 1
	}

	if *outdir != "" {
		if err := writeDir(*outdir, ids, tbs, *csv); err != nil {
			fmt.Fprintf(stderr, "asapfig: %v\n", err)
			return 1
		}
		return 0
	}
	for _, tb := range tbs {
		if *csv {
			fmt.Fprint(stdout, tb.CSV())
		} else {
			fmt.Fprintln(stdout, tb.Text())
		}
	}
	return 0
}

// writeDir writes one file per experiment: <dir>/<id>.csv or <id>.txt.
func writeDir(dir string, ids []string, tbs []*harness.Table, csv bool) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for i, tb := range tbs {
		name, body := ids[i]+".txt", tb.Text()
		if csv {
			name, body = ids[i]+".csv", tb.CSV()
		}
		if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
			return err
		}
	}
	return nil
}
