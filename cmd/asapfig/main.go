// Command asapfig regenerates the figures and tables of the ASAP paper's
// evaluation section.
//
// Usage:
//
//	asapfig fig8            # one experiment
//	asapfig all             # everything
//	asapfig -csv fig13      # CSV output
//	asapfig -ops 400 fig10  # publication scale (default); -ops 80 is quick
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"asap/internal/harness"
)

func main() {
	var (
		ops  = flag.Int("ops", 400, "structure-level operations per thread (scale)")
		seed = flag.Uint64("seed", 1, "workload seed")
		csv  = flag.Bool("csv", false, "emit CSV instead of text tables")
	)
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		fmt.Fprintf(os.Stderr, "usage: asapfig [-ops N] [-csv] <%s|all>\n",
			strings.Join(harness.Experiments(), "|"))
		os.Exit(2)
	}

	ids := args
	if len(args) == 1 && args[0] == "all" {
		ids = harness.Experiments()
	}

	h := harness.New(harness.Options{Ops: *ops, Seed: *seed})
	for _, id := range ids {
		tb, err := h.Experiment(id)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if *csv {
			fmt.Print(tb.CSV())
		} else {
			fmt.Println(tb.Text())
		}
	}
}
