// Command asapfig regenerates the figures and tables of the ASAP paper's
// evaluation section.
//
// Usage:
//
//	asapfig fig8                  # one experiment
//	asapfig all                   # everything
//	asapfig -csv fig13            # CSV output
//	asapfig -ops 400 fig10        # publication scale (default); -ops 80 is quick
//	asapfig -parallel 8 all       # 8 concurrent simulations (0 = GOMAXPROCS)
//	asapfig -csv -outdir out all  # one file per experiment instead of stdout
//	asapfig -list                 # print experiment IDs, one per line
//	asapfig -perf all             # wall time per experiment + cycles/sec (stderr)
//	asapfig -profile prof fig8    # write prof/cpu.pprof and prof/heap.pprof
//	asapfig -tracedir tr fig8     # Chrome trace + timeline CSV per simulation
//
// Independent simulations fan out across a worker pool; results are
// deterministic, so output is byte-identical at any -parallel setting.
// Trace capture (-tracedir) keeps that property: artifacts are written
// exactly once per simulation and their content does not depend on the
// pool size.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"sync"
	"time"

	"asap/internal/harness"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main with injectable args and streams, for testing. It returns
// the process exit code: 0 on success, 1 when an experiment fails, 2 on
// usage errors.
func run(argv []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("asapfig", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		ops      = fs.Int("ops", 400, "structure-level operations per thread (scale)")
		seed     = fs.Uint64("seed", 1, "workload seed")
		csv      = fs.Bool("csv", false, "emit CSV instead of text tables")
		parallel = fs.Int("parallel", 0, "max concurrent simulations (0 = GOMAXPROCS, 1 = serial)")
		outdir   = fs.String("outdir", "", "write one <experiment>.csv/.txt per experiment into this directory instead of stdout")
		list     = fs.Bool("list", false, "print the experiment IDs and exit")
		perf     = fs.Bool("perf", false, "report wall time per experiment and simulated cycles/sec to stderr")
		profile  = fs.String("profile", "", "write pprof profiles (cpu.pprof, heap.pprof) into this directory")
		tracedir = fs.String("tracedir", "", "capture a Chrome trace JSON + timeline CSV per simulation into this directory")
		shards   = fs.Int("shards", 1, "timing domains per simulation (1 = serial engine; >1 shards each machine, identical tables)")
	)
	if err := fs.Parse(argv); err != nil {
		return 2
	}
	if *list {
		for _, id := range harness.Experiments() {
			fmt.Fprintln(stdout, id)
		}
		return 0
	}
	args := fs.Args()
	if len(args) == 0 {
		fmt.Fprintf(stderr, "usage: asapfig [-ops N] [-csv] [-parallel N] [-outdir DIR] <%s|all>\n",
			strings.Join(harness.Experiments(), "|"))
		return 2
	}

	ids := args
	if len(args) == 1 && args[0] == "all" {
		ids = harness.Experiments()
	}

	stopProfile, err := startProfile(*profile)
	if err != nil {
		fmt.Fprintf(stderr, "asapfig: %v\n", err)
		return 1
	}
	defer func() {
		if err := stopProfile(); err != nil {
			fmt.Fprintf(stderr, "asapfig: profile: %v\n", err)
		}
	}()

	if *shards > 1 && *tracedir != "" {
		fmt.Fprintln(stderr, "asapfig: -tracedir requires the serial engine (-shards=1)")
		return 2
	}
	h := harness.New(harness.Options{Ops: *ops, Seed: *seed, Parallel: *parallel, TraceDir: *tracedir, Shards: *shards})
	start := time.Now()
	var (
		tbs   []*harness.Table
		walls []time.Duration
	)
	if *perf {
		tbs, walls, err = timedTables(h, ids)
	} else {
		tbs, err = h.Tables(ids)
	}
	if err != nil {
		// Tables wraps the first failure with its experiment ID.
		fmt.Fprintf(stderr, "asapfig: %v\n", err)
		return 1
	}
	if *perf {
		reportPerf(stderr, h, ids, walls, time.Since(start))
	}

	if *outdir != "" {
		if err := writeDir(*outdir, ids, tbs, *csv); err != nil {
			fmt.Fprintf(stderr, "asapfig: %v\n", err)
			return 1
		}
		return 0
	}
	for _, tb := range tbs {
		if *csv {
			fmt.Fprint(stdout, tb.CSV())
		} else {
			fmt.Fprintln(stdout, tb.Text())
		}
	}
	return 0
}

// timedTables is Harness.Tables with a wall-clock measurement around each
// experiment. Timings overlap when the engine is parallel (experiments
// share the worker pool), so per-experiment walls sum to more than the
// total.
func timedTables(h *harness.Harness, ids []string) ([]*harness.Table, []time.Duration, error) {
	tbs := make([]*harness.Table, len(ids))
	walls := make([]time.Duration, len(ids))
	errs := make([]error, len(ids))
	runOne := func(i int, id string) {
		t0 := time.Now()
		tbs[i], errs[i] = h.Experiment(id)
		walls[i] = time.Since(t0)
	}
	if h.Parallelism() > 1 {
		var wg sync.WaitGroup
		wg.Add(len(ids))
		for i, id := range ids {
			go func(i int, id string) {
				defer wg.Done()
				runOne(i, id)
			}(i, id)
		}
		wg.Wait()
	} else {
		for i, id := range ids {
			runOne(i, id)
		}
	}
	for i, err := range errs {
		if err != nil {
			return nil, nil, fmt.Errorf("%s: %w", ids[i], err)
		}
	}
	return tbs, walls, nil
}

// reportPerf prints the per-experiment wall times and the engine's
// aggregate simulation throughput.
func reportPerf(w io.Writer, h *harness.Harness, ids []string, walls []time.Duration, total time.Duration) {
	for i, id := range ids {
		fmt.Fprintf(w, "perf: %-8s %8.3fs wall\n", id, walls[i].Seconds())
	}
	runs, cycles := h.Perf()
	rate := float64(cycles) / total.Seconds()
	fmt.Fprintf(w, "perf: total    %8.3fs wall, %d simulations, %d simulated cycles, %.1fM cycles/s\n",
		total.Seconds(), runs, cycles, rate/1e6)
}

// startProfile begins CPU profiling into dir/cpu.pprof and returns the
// function that stops it and snapshots dir/heap.pprof. With dir empty
// both are no-ops.
func startProfile(dir string) (stop func() error, err error) {
	if dir == "" {
		return func() error { return nil }, nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	cf, err := os.Create(filepath.Join(dir, "cpu.pprof"))
	if err != nil {
		return nil, err
	}
	if err := pprof.StartCPUProfile(cf); err != nil {
		cf.Close()
		return nil, err
	}
	return func() error {
		pprof.StopCPUProfile()
		if err := cf.Close(); err != nil {
			return err
		}
		hf, err := os.Create(filepath.Join(dir, "heap.pprof"))
		if err != nil {
			return err
		}
		defer hf.Close()
		runtime.GC() // capture live objects, not allocation noise
		return pprof.WriteHeapProfile(hf)
	}, nil
}

// writeDir writes one file per experiment: <dir>/<id>.csv or <id>.txt.
func writeDir(dir string, ids []string, tbs []*harness.Table, csv bool) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for i, tb := range tbs {
		name, body := ids[i]+".txt", tb.Text()
		if csv {
			name, body = ids[i]+".csv", tb.CSV()
		}
		if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
			return err
		}
	}
	return nil
}
