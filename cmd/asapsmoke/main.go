// Command asapsmoke is the end-to-end smoke client for a running asapd:
// it submits one RunSpec twice and proves the service's core contract —
// the first submission simulates (cache miss), the second is answered
// from the content-addressed store (cache hit) with a byte-identical
// body and no re-simulation. It then checks the daemon's telemetry: the
// /metrics exposition must be syntactically valid Prometheus text
// counting exactly that one simulation with non-empty request latency
// histograms, and the run's SSE event stream must terminate with a done
// event. CI's service job runs it against a freshly started daemon;
// `make smoke` does the same locally.
//
// Usage:
//
//	asapsmoke -addr http://127.0.0.1:8321
//	asapsmoke -addr http://127.0.0.1:8321 -workload cceh -model asap_rp -threads 4 -ops 200
//
// Exit status 0 means every assertion held; any violation prints the
// mismatch and exits 1.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	"asap/internal/config"
	"asap/internal/runspec"
	"asap/internal/stats"
	"asap/internal/workload"
)

func main() {
	var (
		addr    = flag.String("addr", "http://127.0.0.1:8321", "asapd base URL")
		wl      = flag.String("workload", "cceh", "workload to submit")
		mdl     = flag.String("model", "asap_rp", "persistence model")
		threads = flag.Int("threads", 2, "threads")
		ops     = flag.Int("ops", 40, "ops per thread")
		seed    = flag.Uint64("seed", 1, "workload seed")
		wait    = flag.Duration("wait", 30*time.Second, "max wait for the daemon to come up")
	)
	flag.Parse()
	if err := smoke(*addr, *wl, *mdl, *threads, *ops, *seed, *wait); err != nil {
		fmt.Fprintln(os.Stderr, "asapsmoke: FAIL:", err)
		os.Exit(1)
	}
}

func smoke(addr, wl, mdl string, threads, ops int, seed uint64, wait time.Duration) error {
	if err := waitHealthy(addr, wait); err != nil {
		return err
	}

	p := workload.Default()
	p.Threads = threads
	p.OpsPerThread = ops
	p.Seed = seed
	spec := runspec.New(wl, mdl, p, config.Default())
	body, err := spec.Canonical()
	if err != nil {
		return err
	}
	wantHash := spec.MustHash()
	fmt.Printf("asapsmoke: spec %s, hash %s\n", spec, wantHash)

	// First submission: the daemon is fresh, so this must simulate.
	body1, cache1, err := submit(addr, body)
	if err != nil {
		return fmt.Errorf("first submit: %w", err)
	}
	if cache1 != "miss" {
		return fmt.Errorf("first submission was %q, want miss (dirty store?)", cache1)
	}

	// Second submission: must be a store hit, byte-identical.
	body2, cache2, err := submit(addr, body)
	if err != nil {
		return fmt.Errorf("second submit: %w", err)
	}
	if cache2 != "hit" {
		return fmt.Errorf("second submission was %q, want hit", cache2)
	}
	if !bytes.Equal(body1, body2) {
		return fmt.Errorf("responses differ between identical submissions:\n--- first\n%s\n--- second\n%s", body1, body2)
	}

	// The envelope carries the hash we computed client-side — client and
	// server agree on the canonical form.
	var env struct {
		Hash   string `json:"hash"`
		Result struct {
			Cycles uint64 `json:"cycles"`
		} `json:"result"`
	}
	if err := json.Unmarshal(body1, &env); err != nil {
		return fmt.Errorf("decoding envelope: %w", err)
	}
	if env.Hash != wantHash {
		return fmt.Errorf("server hashed the spec as %s, client as %s", env.Hash, wantHash)
	}
	if env.Result.Cycles == 0 {
		return fmt.Errorf("result reports zero cycles")
	}

	// GET by content address serves the same bytes.
	body3, cache3, err := get(addr + "/v1/runs/" + wantHash)
	if err != nil {
		return fmt.Errorf("GET by id: %w", err)
	}
	if cache3 != "hit" || !bytes.Equal(body1, body3) {
		return fmt.Errorf("GET /v1/runs/%s disagrees with POST (cache %q)", wantHash, cache3)
	}

	// And the daemon's own accounting confirms one simulation total.
	stats, _, err := get(addr + "/v1/stats")
	if err != nil {
		return fmt.Errorf("GET stats: %w", err)
	}
	var sp struct {
		Server struct {
			RunsExecuted int64 `json:"runsExecuted"`
			CacheHits    int64 `json:"cacheHits"`
		} `json:"server"`
	}
	if err := json.Unmarshal(stats, &sp); err != nil {
		return fmt.Errorf("decoding stats: %w", err)
	}
	if sp.Server.RunsExecuted != 1 {
		return fmt.Errorf("daemon executed %d simulations for two identical submissions, want 1", sp.Server.RunsExecuted)
	}
	if sp.Server.CacheHits < 1 {
		return fmt.Errorf("daemon counted %d cache hits, want >= 1", sp.Server.CacheHits)
	}

	// The Prometheus exposition is syntactically valid and tells the same
	// story: one simulation executed, request latencies recorded.
	if err := checkMetrics(addr); err != nil {
		return fmt.Errorf("GET /metrics: %w", err)
	}

	// The SSE stream for a completed run terminates with a done event
	// (and progress events, if any, carry the right id).
	if err := checkEvents(addr, wantHash); err != nil {
		return fmt.Errorf("SSE events: %w", err)
	}

	fmt.Printf("asapsmoke: ok: %d cycles, 1 simulation, second response a byte-identical store hit\n", env.Result.Cycles)
	return nil
}

// checkMetrics scrapes /metrics after the miss→hit pair: the page must
// pass the exposition syntax check, count exactly the one executed
// simulation, and carry non-empty request latency histograms and
// per-run span distributions.
func checkMetrics(addr string) error {
	page, _, err := get(addr + "/metrics")
	if err != nil {
		return err
	}
	if err := stats.CheckProm(bytes.NewReader(page)); err != nil {
		return fmt.Errorf("invalid exposition: %w", err)
	}
	out := string(page)
	for _, want := range []string{
		"asapd_runs_executed_total 1\n",
		"asap_run_simulate_millis_count 1\n",
	} {
		if !strings.Contains(out, want) {
			return fmt.Errorf("missing %q in exposition", strings.TrimSpace(want))
		}
	}
	// The POST /v1/runs latency histogram saw both submissions.
	histCount := `asapd_request_duration_seconds_count{method="POST",route="/v1/runs"} `
	i := strings.Index(out, histCount)
	if i < 0 {
		return fmt.Errorf("no latency histogram for POST /v1/runs")
	}
	rest := out[i+len(histCount):]
	if nl := strings.IndexByte(rest, '\n'); nl >= 0 {
		rest = rest[:nl]
	}
	n, err := strconv.Atoi(rest)
	if err != nil || n < 2 {
		return fmt.Errorf("POST /v1/runs histogram count = %q, want >= 2", rest)
	}
	fmt.Printf("asapsmoke: metrics ok: %d bytes of valid exposition\n", len(page))
	return nil
}

// checkEvents streams /v1/runs/{id}/events for a stored run: the stream
// must deliver a terminal done event (progress events may precede it for
// an in-flight run; this one has completed, so done arrives at once).
func checkEvents(addr, hash string) error {
	resp, err := http.Get(addr + "/v1/runs/" + hash + "/events")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		return fmt.Errorf("content type %q, want text/event-stream", ct)
	}
	var event, last string
	events := 0
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			events++
			last = event
			data := strings.TrimPrefix(line, "data: ")
			var payload struct {
				ID string `json:"id"`
			}
			if err := json.Unmarshal([]byte(data), &payload); err != nil {
				return fmt.Errorf("event data is not JSON: %q", data)
			}
			if payload.ID != hash {
				return fmt.Errorf("event for run %q, want %s", payload.ID, hash)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if events == 0 || last != "done" {
		return fmt.Errorf("stream ended after %d events with %q, want terminal done", events, last)
	}
	fmt.Printf("asapsmoke: sse ok: %d events, terminal done\n", events)
	return nil
}

// waitHealthy polls /v1/healthz until the daemon answers or the deadline
// passes.
func waitHealthy(addr string, wait time.Duration) error {
	deadline := time.Now().Add(wait)
	for {
		resp, err := http.Get(addr + "/v1/healthz")
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("daemon at %s not healthy after %s (last error: %v)", addr, wait, err)
		}
		time.Sleep(100 * time.Millisecond)
	}
}

// submit POSTs a spec and returns (body, X-Asap-Cache).
func submit(addr string, spec []byte) ([]byte, string, error) {
	resp, err := http.Post(addr+"/v1/runs", "application/json", bytes.NewReader(spec))
	if err != nil {
		return nil, "", err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, "", err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, "", fmt.Errorf("status %d: %s", resp.StatusCode, body)
	}
	return body, resp.Header.Get("X-Asap-Cache"), nil
}

// get GETs a URL and returns (body, X-Asap-Cache).
func get(url string) ([]byte, string, error) {
	resp, err := http.Get(url)
	if err != nil {
		return nil, "", err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, "", err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, "", fmt.Errorf("status %d: %s", resp.StatusCode, body)
	}
	return body, resp.Header.Get("X-Asap-Cache"), nil
}
