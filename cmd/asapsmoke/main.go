// Command asapsmoke is the end-to-end smoke client for a running asapd:
// it submits one RunSpec twice and proves the service's core contract —
// the first submission simulates (cache miss), the second is answered
// from the content-addressed store (cache hit) with a byte-identical
// body and no re-simulation. CI's service job runs it against a freshly
// started daemon; `make smoke` does the same locally.
//
// Usage:
//
//	asapsmoke -addr http://127.0.0.1:8321
//	asapsmoke -addr http://127.0.0.1:8321 -workload cceh -model asap_rp -threads 4 -ops 200
//
// Exit status 0 means every assertion held; any violation prints the
// mismatch and exits 1.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"time"

	"asap/internal/config"
	"asap/internal/runspec"
	"asap/internal/workload"
)

func main() {
	var (
		addr    = flag.String("addr", "http://127.0.0.1:8321", "asapd base URL")
		wl      = flag.String("workload", "cceh", "workload to submit")
		mdl     = flag.String("model", "asap_rp", "persistence model")
		threads = flag.Int("threads", 2, "threads")
		ops     = flag.Int("ops", 40, "ops per thread")
		seed    = flag.Uint64("seed", 1, "workload seed")
		wait    = flag.Duration("wait", 30*time.Second, "max wait for the daemon to come up")
	)
	flag.Parse()
	if err := smoke(*addr, *wl, *mdl, *threads, *ops, *seed, *wait); err != nil {
		fmt.Fprintln(os.Stderr, "asapsmoke: FAIL:", err)
		os.Exit(1)
	}
}

func smoke(addr, wl, mdl string, threads, ops int, seed uint64, wait time.Duration) error {
	if err := waitHealthy(addr, wait); err != nil {
		return err
	}

	p := workload.Default()
	p.Threads = threads
	p.OpsPerThread = ops
	p.Seed = seed
	spec := runspec.New(wl, mdl, p, config.Default())
	body, err := spec.Canonical()
	if err != nil {
		return err
	}
	wantHash := spec.MustHash()
	fmt.Printf("asapsmoke: spec %s, hash %s\n", spec, wantHash)

	// First submission: the daemon is fresh, so this must simulate.
	body1, cache1, err := submit(addr, body)
	if err != nil {
		return fmt.Errorf("first submit: %w", err)
	}
	if cache1 != "miss" {
		return fmt.Errorf("first submission was %q, want miss (dirty store?)", cache1)
	}

	// Second submission: must be a store hit, byte-identical.
	body2, cache2, err := submit(addr, body)
	if err != nil {
		return fmt.Errorf("second submit: %w", err)
	}
	if cache2 != "hit" {
		return fmt.Errorf("second submission was %q, want hit", cache2)
	}
	if !bytes.Equal(body1, body2) {
		return fmt.Errorf("responses differ between identical submissions:\n--- first\n%s\n--- second\n%s", body1, body2)
	}

	// The envelope carries the hash we computed client-side — client and
	// server agree on the canonical form.
	var env struct {
		Hash   string `json:"hash"`
		Result struct {
			Cycles uint64 `json:"cycles"`
		} `json:"result"`
	}
	if err := json.Unmarshal(body1, &env); err != nil {
		return fmt.Errorf("decoding envelope: %w", err)
	}
	if env.Hash != wantHash {
		return fmt.Errorf("server hashed the spec as %s, client as %s", env.Hash, wantHash)
	}
	if env.Result.Cycles == 0 {
		return fmt.Errorf("result reports zero cycles")
	}

	// GET by content address serves the same bytes.
	body3, cache3, err := get(addr + "/v1/runs/" + wantHash)
	if err != nil {
		return fmt.Errorf("GET by id: %w", err)
	}
	if cache3 != "hit" || !bytes.Equal(body1, body3) {
		return fmt.Errorf("GET /v1/runs/%s disagrees with POST (cache %q)", wantHash, cache3)
	}

	// And the daemon's own accounting confirms one simulation total.
	stats, _, err := get(addr + "/v1/stats")
	if err != nil {
		return fmt.Errorf("GET stats: %w", err)
	}
	var sp struct {
		Server struct {
			RunsExecuted int64 `json:"runsExecuted"`
			CacheHits    int64 `json:"cacheHits"`
		} `json:"server"`
	}
	if err := json.Unmarshal(stats, &sp); err != nil {
		return fmt.Errorf("decoding stats: %w", err)
	}
	if sp.Server.RunsExecuted != 1 {
		return fmt.Errorf("daemon executed %d simulations for two identical submissions, want 1", sp.Server.RunsExecuted)
	}
	if sp.Server.CacheHits < 1 {
		return fmt.Errorf("daemon counted %d cache hits, want >= 1", sp.Server.CacheHits)
	}

	fmt.Printf("asapsmoke: ok: %d cycles, 1 simulation, second response a byte-identical store hit\n", env.Result.Cycles)
	return nil
}

// waitHealthy polls /v1/healthz until the daemon answers or the deadline
// passes.
func waitHealthy(addr string, wait time.Duration) error {
	deadline := time.Now().Add(wait)
	for {
		resp, err := http.Get(addr + "/v1/healthz")
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("daemon at %s not healthy after %s (last error: %v)", addr, wait, err)
		}
		time.Sleep(100 * time.Millisecond)
	}
}

// submit POSTs a spec and returns (body, X-Asap-Cache).
func submit(addr string, spec []byte) ([]byte, string, error) {
	resp, err := http.Post(addr+"/v1/runs", "application/json", bytes.NewReader(spec))
	if err != nil {
		return nil, "", err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, "", err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, "", fmt.Errorf("status %d: %s", resp.StatusCode, body)
	}
	return body, resp.Header.Get("X-Asap-Cache"), nil
}

// get GETs a URL and returns (body, X-Asap-Cache).
func get(url string) ([]byte, string, error) {
	resp, err := http.Get(url)
	if err != nil {
		return nil, "", err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, "", err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, "", fmt.Errorf("status %d: %s", resp.StatusCode, body)
	}
	return body, resp.Header.Get("X-Asap-Cache"), nil
}
