// Command asapcrash runs crash-injection campaigns: it executes a workload
// under a persistence model, kills the machine at random cycles, performs
// the ADR power-fail drain (WPQ flush plus recovery-table undo write-back),
// and verifies the recovered NVM image against the paper's consistency
// conditions (§VI, Theorem 2).
//
// Usage:
//
//	asapcrash -workload cceh -model asap_rp -runs 100
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"asap/internal/config"
	"asap/internal/crash"
	"asap/internal/model"
	"asap/internal/workload"
)

func main() {
	var (
		wl      = flag.String("workload", "cceh", "workload name")
		mdl     = flag.String("model", "asap_rp", "model (eadr excluded: its persistence domain is the cache hierarchy)")
		threads = flag.Int("threads", 4, "software threads")
		ops     = flag.Int("ops", 200, "operations per thread")
		runs    = flag.Int("runs", 50, "crash injections")
		seed    = flag.Uint64("seed", 1, "seed for workload and crash points")
		all     = flag.Bool("all", false, "run every workload x every crash-checkable model")
	)
	flag.Parse()

	if *mdl == model.NameEADR && !*all {
		fmt.Fprintln(os.Stderr, "asapcrash: eadr's persistence domain is the whole cache hierarchy; the ADR crash path does not apply (see DESIGN.md)")
		os.Exit(2)
	}

	p := workload.Params{Threads: *threads, OpsPerThread: *ops, KeyRange: 2048, ValueSize: 64, Seed: *seed}

	models := []string{*mdl}
	workloads := []string{*wl}
	if *all {
		models = []string{model.NameBaseline, model.NameHOPSEP, model.NameHOPSRP, model.NameASAPEP, model.NameASAPRP, model.NameDPO, model.NameLBPP, model.NameLRP, model.NameVorpal}
		workloads = workload.Names()
	}

	exit := 0
	for _, w := range workloads {
		tr, err := workload.Generate(w, p)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		for _, mn := range models {
			res, err := crash.Campaign(config.Default(), mn, tr, *runs, *seed)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			status := "OK"
			if len(res.Failures) > 0 {
				status = "FAIL"
				exit = 1
			}
			fmt.Printf("%-16s %-10s runs=%-4d crashes=%-4d failures=%-3d %s\n",
				w, mn, res.Runs, res.Crashes, len(res.Failures), status)
			for i, f := range res.Failures {
				if i >= 3 {
					fmt.Printf("  ... %d more\n", len(res.Failures)-3)
					break
				}
				fmt.Printf("  problems: %s\n", strings.Join(f.Problems, "; "))
			}
		}
	}
	os.Exit(exit)
}
