// Command asaplint runs the repository's static-analysis suite
// (internal/analysis): the per-package analyzers donecheck, detcheck,
// unitcheck, ledgercheck, obscheck, schedcheck and statcheck, plus the
// module-wide call-graph analyzers alloccheck and domaincheck.
// It loads every package of the module from source using only the
// standard library — no go/packages, no external tools — and exits
// non-zero if any finding survives //asaplint:ignore filtering.
//
// Usage:
//
//	asaplint [-list] [-json] [pattern ...]
//
// Patterns are ./...-style package patterns relative to the module root
// (default ./...). With -json each finding is printed as one JSON object
// per line instead of the file:line:col text form.
// Exit status: 0 clean, 1 findings, 2 load error.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"asap/internal/analysis"
	"asap/internal/analysis/alloccheck"
	"asap/internal/analysis/detcheck"
	"asap/internal/analysis/domaincheck"
	"asap/internal/analysis/donecheck"
	"asap/internal/analysis/ledgercheck"
	"asap/internal/analysis/obscheck"
	"asap/internal/analysis/schedcheck"
	"asap/internal/analysis/statcheck"
	"asap/internal/analysis/unitcheck"
)

func analyzers() []analysis.Analyzer {
	return []analysis.Analyzer{
		donecheck.New(),
		detcheck.New(),
		unitcheck.New(),
		ledgercheck.New(),
		obscheck.New(),
		schedcheck.New(),
		statcheck.New(),
	}
}

func moduleAnalyzers() []analysis.ModuleAnalyzer {
	return []analysis.ModuleAnalyzer{
		alloccheck.New(),
		domaincheck.New(),
	}
}

func main() {
	list := flag.Bool("list", false, "list analyzers and exit")
	jsonOut := flag.Bool("json", false, "emit findings as one JSON object per line")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: asaplint [-list] [-json] [pattern ...]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range analyzers() {
			fmt.Printf("%-12s %s\n", a.Name(), a.Doc())
		}
		for _, a := range moduleAnalyzers() {
			fmt.Printf("%-12s %s\n", a.Name(), a.Doc())
		}
		return
	}

	os.Exit(run(flag.Args(), *jsonOut))
}

// jsonDiag is the -json wire form of one finding.
type jsonDiag struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

func run(patterns []string, jsonOut bool) int {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "asaplint:", err)
		return 2
	}
	loader, err := analysis.NewLoader(wd)
	if err != nil {
		fmt.Fprintln(os.Stderr, "asaplint:", err)
		return 2
	}
	pkgs, err := loader.LoadAll()
	if err != nil {
		fmt.Fprintln(os.Stderr, "asaplint:", err)
		return 2
	}

	// Module-wide analyzers see the whole module at once; their findings
	// are bucketed back to the package each position lives in, so ignore
	// filtering (and malformed-directive reporting) runs exactly once per
	// package, over the combined per-package + module findings.
	filePkg := make(map[string]*analysis.Package)
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			filePkg[pkg.Fset.Position(f.Pos()).Filename] = pkg
		}
	}
	moduleDiags := make(map[*analysis.Package][]analysis.Diagnostic)
	for _, a := range moduleAnalyzers() {
		for _, d := range analysis.RunModule(a, pkgs) {
			if pkg, ok := filePkg[d.Pos.Filename]; ok {
				moduleDiags[pkg] = append(moduleDiags[pkg], d)
			}
		}
	}

	enc := json.NewEncoder(os.Stdout)
	findings := 0
	matched := 0
	for _, pkg := range pkgs {
		if !matchesAny(loader, pkg, patterns) {
			continue
		}
		matched++
		diags := moduleDiags[pkg]
		for _, a := range analyzers() {
			diags = append(diags, analysis.Run(a, pkg)...)
		}
		diags = analysis.FilterIgnored(pkg.Fset, pkg.Files, diags)
		for _, d := range diags {
			d.Pos.Filename = relPath(loader.Root(), d.Pos.Filename)
			if jsonOut {
				enc.Encode(jsonDiag{
					File:     d.Pos.Filename,
					Line:     d.Pos.Line,
					Col:      d.Pos.Column,
					Analyzer: d.Analyzer,
					Message:  d.Message,
				})
			} else {
				fmt.Println(d)
			}
			findings++
		}
	}
	if matched == 0 {
		// A typo'd pattern silently linting nothing would read as a clean
		// run in CI; treat it like an invocation error instead.
		fmt.Fprintf(os.Stderr, "asaplint: no packages match %v\n", patterns)
		return 2
	}
	if findings > 0 {
		fmt.Fprintf(os.Stderr, "asaplint: %d finding(s)\n", findings)
		return 1
	}
	return 0
}

// matchesAny reports whether the package matches one of the ./...-style
// patterns, resolved against the module root.
func matchesAny(l *analysis.Loader, pkg *analysis.Package, patterns []string) bool {
	rel, err := filepath.Rel(l.Root(), pkg.Dir)
	if err != nil {
		return false
	}
	rel = filepath.ToSlash(rel)
	for _, p := range patterns {
		p = strings.TrimPrefix(filepath.ToSlash(p), "./")
		switch {
		case p == "..." || p == "":
			return true
		case strings.HasSuffix(p, "/..."):
			prefix := strings.TrimSuffix(p, "/...")
			if rel == prefix || strings.HasPrefix(rel, prefix+"/") {
				return true
			}
		case rel == p:
			return true
		case pkg.Path == p:
			return true
		}
	}
	return false
}

func relPath(root, path string) string {
	if rel, err := filepath.Rel(root, path); err == nil && !strings.HasPrefix(rel, "..") {
		return rel
	}
	return path
}
