package asap

// The golden-table gate: every experiment's CSV at quick scale must match
// the files committed under testdata/golden byte-for-byte, on both the
// serial and the parallel engine. This is the same check CI's golden job
// runs through cmd/asapfig; here it also runs for anyone typing
// `go test ./...`. Simulator timing changes are expected to trip it —
// regenerate with `make golden` and review the diff as part of the
// change.

import (
	"os"
	"path/filepath"
	"testing"

	"asap/internal/harness"
)

// goldenOptions mirrors `asapfig -ops 80 -csv -outdir testdata/golden all`.
func goldenOptions(parallel int) harness.Options {
	return harness.Options{Ops: 80, Seed: 1, Parallel: parallel}
}

func checkGolden(t *testing.T, parallel int) {
	t.Helper()
	h := harness.New(goldenOptions(parallel))
	ids := harness.Experiments()
	tbs, err := h.Tables(ids)
	if err != nil {
		t.Fatal(err)
	}
	for i, tb := range tbs {
		path := filepath.Join("testdata", "golden", ids[i]+".csv")
		want, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("%s: %v (regenerate with `make golden`)", ids[i], err)
		}
		if got := tb.CSV(); got != string(want) {
			t.Errorf("%s: CSV differs from %s — if the simulator change is intended, regenerate with `make golden`\n--- got ---\n%s--- want ---\n%s",
				ids[i], path, got, want)
		}
	}
}

// TestGoldenTablesSerial pins the serial engine's output to the goldens.
func TestGoldenTablesSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("golden regeneration is not short")
	}
	checkGolden(t, 1)
}

// TestGoldenTablesParallel pins the 8-worker engine to the same bytes —
// the determinism guarantee that makes -parallel safe for publication
// numbers.
func TestGoldenTablesParallel(t *testing.T) {
	if testing.Short() {
		t.Skip("golden regeneration is not short")
	}
	checkGolden(t, 8)
}
