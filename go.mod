module asap

go 1.23
