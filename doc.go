// Package asap is a from-scratch Go reproduction of "ASAP: A Speculative
// Approach to Persistence" (Yadalam, Shah, Yu, Swift — HPCA 2022).
//
// ASAP is a persistency architecture for non-volatile memory that flushes
// writes eagerly and possibly out of order, speculatively updates memory at
// the controllers, and keeps just enough undo/delay state in an ADR-backed
// recovery table to roll back mis-speculation on a power failure. This
// repository rebuilds the paper's entire evaluation stack in Go:
//
//   - a discrete-event multi-core, multi-memory-controller machine model
//     (internal/sim, internal/machine) with a three-level cache hierarchy
//     and MESI-style directory (internal/cache) and Optane-like NVM
//     controllers with WPQ, XPBuffer and recovery tables (internal/mem,
//     internal/persist);
//   - the six evaluated designs — Intel baseline, HOPS_EP/RP, ASAP_EP/RP
//     and an eADR/BBB ideal (internal/model);
//   - the Table III workloads, including real implementations of CCEH,
//     FAST&FAIR, Dash, P-ART, P-CLHT, P-Masstree and the Atlas structures
//     over a simulated persistent heap (internal/pmds, internal/workload);
//   - a crash-injection and recovery-consistency checker implementing the
//     paper's §VI correctness conditions (internal/crash);
//   - a harness regenerating every figure and table of §VII
//     (internal/harness), driven by cmd/asapfig, cmd/asapsim and
//     cmd/asapcrash, and benchmarked by bench_test.go.
//
// See README.md for a guided tour, DESIGN.md for the system inventory and
// EXPERIMENTS.md for paper-vs-measured results.
package asap
